//! Property test: the heap and calendar scheduler backends are
//! observationally identical on arbitrary interleaved
//! schedule/cancel/pop/peek programs — including same-instant ties,
//! batched bursts, and cancel-heavy churn. This is the contract that
//! lets `SchedulerKind` be a pure performance switch: the delivered
//! event sequence (and therefore every simulation result built on it)
//! cannot depend on the backend.

use afraid_sim::queue::{EventId, EventQueue, SchedulerKind};
use afraid_sim::time::SimTime;
use proptest::prelude::*;
use proptest::TestCaseError;

#[derive(Clone, Debug)]
enum Op {
    /// Schedule one event `dt` ns after the last popped time.
    Schedule(u64),
    /// Schedule a burst of events in one `schedule_batch` call.
    Batch(Vec<u64>),
    /// Cancel the id at `index % live` (no-op when none are live).
    Cancel(usize),
    Pop,
    Peek,
}

fn programs() -> impl Strategy<Value = Vec<Op>> {
    // Offsets are drawn from a tiny grid (multiples of 250 ns) so
    // same-instant collisions — the case where tie-breaking matters —
    // are common rather than vanishingly rare.
    let dt = (0u64..8).prop_map(|k| k * 250);
    prop::collection::vec(
        prop_oneof![
            dt.clone().prop_map(Op::Schedule),
            prop::collection::vec(dt, 0..12).prop_map(Op::Batch),
            (0usize..1 << 16).prop_map(Op::Cancel),
            Just(Op::Pop),
            Just(Op::Peek),
        ],
        1..300,
    )
}

/// Runs `program` against both backends in lockstep, comparing every
/// observable: pop results, peek times, live counts, cancel outcomes.
fn run_lockstep(program: &[Op]) -> Result<(), TestCaseError> {
    let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap);
    let mut cal: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Calendar);
    let mut ids: Vec<(EventId, EventId)> = Vec::new();
    let mut now = 0u64;
    let mut payload = 0u64;
    for (step, op) in program.iter().enumerate() {
        match op {
            Op::Schedule(dt) => {
                let t = SimTime::from_nanos(now + dt);
                let ih = heap.schedule(t, payload);
                let ic = cal.schedule(t, payload);
                payload += 1;
                ids.push((ih, ic));
            }
            Op::Batch(dts) => {
                let base = payload;
                heap.schedule_batch(
                    dts.iter()
                        .enumerate()
                        .map(|(i, dt)| (SimTime::from_nanos(now + dt), base + i as u64)),
                );
                cal.schedule_batch(
                    dts.iter()
                        .enumerate()
                        .map(|(i, dt)| (SimTime::from_nanos(now + dt), base + i as u64)),
                );
                payload += dts.len() as u64;
            }
            Op::Cancel(index) => {
                if !ids.is_empty() {
                    let (ih, ic) = ids.swap_remove(index % ids.len());
                    prop_assert_eq!(
                        heap.cancel(ih),
                        cal.cancel(ic),
                        "cancel outcome diverged at step {}",
                        step
                    );
                }
            }
            Op::Pop => {
                let h = heap.pop();
                let c = cal.pop();
                prop_assert_eq!(h, c, "pop diverged at step {}: {:?} vs {:?}", step, h, c);
                if let Some((t, _)) = h {
                    now = t.as_nanos();
                }
            }
            Op::Peek => {
                prop_assert_eq!(
                    heap.peek_time(),
                    cal.peek_time(),
                    "peek diverged at step {}",
                    step
                );
            }
        }
        prop_assert_eq!(heap.len(), cal.len(), "len diverged at step {}", step);
    }
    // Final drain: every remaining event comes out identically.
    loop {
        let h = heap.pop();
        let c = cal.pop();
        prop_assert_eq!(h, c, "final drain diverged: {:?} vs {:?}", h, c);
        if h.is_none() {
            return Ok(());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary interleaved programs deliver identical sequences.
    #[test]
    fn backends_are_observationally_identical(program in programs()) {
        run_lockstep(&program)?;
    }
}

/// 100k-scale churn, beyond what the random programs reach: a sustained
/// schedule/cancel/pop mix that forces the calendar through many resize
/// cycles and tombstone sweeps.
#[test]
fn backends_agree_at_100k_churn() {
    use afraid_sim::rng::SplitMix64;

    let mut heap: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Heap);
    let mut cal: EventQueue<u64> = EventQueue::with_scheduler(SchedulerKind::Calendar);
    let mut rng = SplitMix64::new(0xAF1D_0900);
    let mut ids: Vec<(EventId, EventId)> = Vec::new();
    let mut now = 0u64;
    for i in 0..100_000u64 {
        match rng.next_u64() % 8 {
            0..=3 => {
                // Bimodal spacing: dense completions plus occasional
                // far-out timers, the shape the simulator produces.
                let dt = if rng.next_u64().is_multiple_of(16) {
                    1_000_000_000 + rng.next_u64() % 1_000_000
                } else {
                    (rng.next_u64() % 64) * 100
                };
                let t = SimTime::from_nanos(now + dt);
                ids.push((heap.schedule(t, i), cal.schedule(t, i)));
            }
            4 | 5 => {
                if !ids.is_empty() {
                    let k = (rng.next_u64() as usize) % ids.len();
                    let (ih, ic) = ids.swap_remove(k);
                    assert_eq!(heap.cancel(ih), cal.cancel(ic));
                }
            }
            _ => {
                let h = heap.pop();
                assert_eq!(h, cal.pop(), "divergence at op {i}");
                if let Some((t, _)) = h {
                    now = t.as_nanos();
                }
            }
        }
    }
    loop {
        let h = heap.pop();
        assert_eq!(h, cal.pop(), "divergence in final drain");
        if h.is_none() {
            break;
        }
    }
    assert_eq!(
        heap.scan_ops(),
        cal.scan_ops(),
        "tombstone accounting diverged"
    );
}
