//! Property-based tests of the disk model: physical plausibility
//! bounds that must hold for *any* request sequence.

use afraid_disk::disk::{Disk, DiskRequest, OpKind};
use afraid_disk::geometry::{Geometry, Zone};
use afraid_disk::model::DiskModel;
use afraid_disk::seek::SeekProfile;
use afraid_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn models() -> impl Strategy<Value = DiskModel> {
    prop_oneof![
        Just(DiskModel::hp_c3325()),
        Just(DiskModel::hp_c2247()),
        Just(DiskModel::barracuda_7200()),
        Just(DiskModel::test_disk()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Service time is bounded below by the pure media transfer time
    /// and above by overhead + full stroke + one revolution + transfer
    /// + per-track switch costs.
    #[test]
    fn service_time_within_physical_bounds(
        model in models(),
        reqs in prop::collection::vec((0.0f64..1.0, 1u64..256, any::<bool>()), 1..40),
    ) {
        let mut disk = Disk::new(model.clone(), SimDuration::ZERO);
        let cap = disk.capacity_sectors();
        let mut now = SimTime::ZERO;
        for (frac, sectors, is_write) in reqs {
            let lba = ((cap - sectors) as f64 * frac) as u64;
            let op = if is_write { OpKind::Write } else { OpKind::Read };
            let before = now.max(disk.free_at());
            let done = disk.submit(now, &DiskRequest { lba, sectors, op }).expect_ok();
            let service = done.since(before);

            // Lower bound: media transfer of all sectors at the
            // fastest (outer-zone) rate.
            let min_spt = model.geometry.zones().iter().map(|z| z.sectors_per_track).max().unwrap();
            let lower = model.sector_time(min_spt) * sectors;
            prop_assert!(service >= lower, "service {service} < transfer floor {lower}");

            // Upper bound: worst overhead + full-stroke seek + one
            // revolution + transfer at the slowest rate + a switch per
            // track crossed.
            let max_cyl = model.geometry.cylinders();
            let slow_spt = model.geometry.zones().iter().map(|z| z.sectors_per_track).min().unwrap();
            let tracks = sectors / u64::from(slow_spt) + 2;
            let upper = model.write_overhead
                + model.seek.time(max_cyl - 1)
                + model.revolution()
                + model.sector_time(slow_spt) * sectors
                + (model.head_switch.max(model.seek.track_to_track())) * tracks;
            prop_assert!(service <= upper, "service {service} > ceiling {upper}");

            now = done;
        }
    }

    /// The disk never travels back in time: completions are
    /// monotonically non-decreasing in submission order.
    #[test]
    fn completions_monotone(
        model in models(),
        reqs in prop::collection::vec((0.0f64..1.0, 1u64..64), 2..50),
    ) {
        let mut disk = Disk::new(model, SimDuration::ZERO);
        let cap = disk.capacity_sectors();
        let mut last = SimTime::ZERO;
        for (frac, sectors) in reqs {
            let lba = ((cap - sectors) as f64 * frac) as u64;
            let done = disk.submit(
                SimTime::ZERO,
                &DiskRequest { lba, sectors, op: OpKind::Read },
            ).expect_ok();
            prop_assert!(done >= last);
            last = done;
        }
    }

    /// Busy time never exceeds wall time, and stats add up.
    #[test]
    fn stats_are_consistent(
        reqs in prop::collection::vec((0.0f64..1.0, 1u64..64, any::<bool>()), 1..50),
    ) {
        let mut disk = Disk::new(DiskModel::hp_c3325(), SimDuration::ZERO);
        let cap = disk.capacity_sectors();
        let mut expected_sectors = 0u64;
        for (frac, sectors, is_write) in &reqs {
            let lba = ((cap - sectors) as f64 * frac) as u64;
            let op = if *is_write { OpKind::Write } else { OpKind::Read };
            disk.submit(SimTime::ZERO, &DiskRequest { lba, sectors: *sectors, op }).expect_ok();
            expected_sectors += sectors;
        }
        let s = disk.stats();
        prop_assert_eq!(s.reads + s.writes, reqs.len() as u64);
        prop_assert_eq!(s.sectors, expected_sectors);
        prop_assert!(s.busy_time <= disk.free_at().since(SimTime::ZERO));
        prop_assert!(s.seek_time + s.rotation_time + s.transfer_time <= s.busy_time);
    }

    /// Geometry round-trip: every LBA maps to a CHS that maps back.
    #[test]
    fn geometry_roundtrip(
        heads in 1u32..16,
        zones in prop::collection::vec((1u32..50, 8u32..150), 1..6),
        probe in 0.0f64..1.0,
    ) {
        let g = Geometry::new(
            heads,
            zones
                .into_iter()
                .map(|(cylinders, sectors_per_track)| Zone { cylinders, sectors_per_track })
                .collect(),
        );
        let lba = (g.capacity_sectors() as f64 * probe) as u64;
        let lba = lba.min(g.capacity_sectors() - 1);
        prop_assert_eq!(g.lba_of(g.locate(lba)), lba);
    }

    /// The seek curve is monotone non-decreasing for any calibration.
    #[test]
    fn seek_monotone(
        single in 0.5f64..4.0,
        crossover in 10u32..1000,
        mid_extra in 0.5f64..15.0,
        max_extra in 0.5f64..20.0,
        span in 1u32..8000,
    ) {
        let max_cyl = crossover + span;
        let mid = single + mid_extra;
        let profile = SeekProfile::from_calibration(
            single,
            crossover,
            mid,
            max_cyl,
            mid + max_extra,
        );
        let mut last = SimDuration::ZERO;
        let step = (max_cyl / 97).max(1);
        for d in (0..=max_cyl).step_by(step as usize) {
            let t = profile.time(d);
            prop_assert!(t >= last, "seek curve decreased at distance {d}");
            last = t;
        }
    }
}
