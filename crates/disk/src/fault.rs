//! Transient per-I/O fault injection: media errors, command timeouts,
//! and fail-slow service inflation.
//!
//! Real disks rarely die cleanly. The dominant partial failure modes
//! are transient media errors (a command fails once and succeeds on
//! retry), command timeouts (the drive goes unresponsive for one
//! command), and fail-slow "limping" (electronics or remapping
//! trouble inflates every service time for a while). The
//! [`FaultInjector`] models all three deterministically:
//!
//! * each disk owns its own [`SplitMix64`] stream, forked from one
//!   master seed, so per-disk fault histories are independent yet
//!   reproducible;
//! * media-error and timeout draws are Bernoulli per *attempt*, so a
//!   controller retry redraws — exactly the transient semantics;
//! * the fail-slow window is a fixed `[start, until)` interval during
//!   which mechanical service times are multiplied by a factor; a
//!   slow command whose service exceeds the command timeout reports
//!   [`IoOutcome::Timeout`], which is how a health monitor watching
//!   the error stream notices a limping disk.
//!
//! With both rates zero and no window configured the injector draws
//! no random numbers and changes no completion time, so a faultless
//! run is bit-identical with or without it.
//!
//! Beyond the *reported* faults, the injector also models the silent
//! classes — bit-flip reads, torn writes, lost writes, and misdirected
//! writes ([`SilentProfile`]) — where the drive answers `Ok` while the
//! bytes are wrong. Silent draws come from a second, independent
//! `SplitMix64` stream so enabling them never perturbs the transient
//! fault history, and zero rates again draw nothing. The injector only
//! decides *that* a silent fault fired; the array layer above owns the
//! content model and applies the effect.

use afraid_sim::rng::SplitMix64;
use afraid_sim::time::{SimDuration, SimTime};

/// What became of one submitted disk command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoOutcome {
    /// Completed successfully at the given instant.
    Ok(SimTime),
    /// An unrecoverable-at-the-drive media error, reported at the
    /// given instant (the drive ground through its full service and
    /// internal retries before giving up).
    MediaError(SimTime),
    /// The command exceeded the command timeout; the controller hears
    /// nothing until it gives up at the given instant.
    Timeout(SimTime),
    /// The disk is failed outright: no I/O was attempted.
    Failed,
}

impl IoOutcome {
    /// The completion time of a successful command.
    ///
    /// # Panics
    ///
    /// Panics if the command did not succeed — for callers that model
    /// fault-free disks and want the old infallible-submit ergonomics.
    pub fn expect_ok(self) -> SimTime {
        match self {
            IoOutcome::Ok(t) => t,
            other => panic!("disk I/O did not succeed: {other:?}"),
        }
    }

    /// True for [`IoOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, IoOutcome::Ok(_))
    }

    /// The instant the outcome is reported to the controller, if any
    /// I/O was attempted at all.
    pub fn report_at(&self) -> Option<SimTime> {
        match self {
            IoOutcome::Ok(t) | IoOutcome::MediaError(t) | IoOutcome::Timeout(t) => Some(*t),
            IoOutcome::Failed => None,
        }
    }
}

/// Per-attempt fault rates and the command timeout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Probability one attempt reports a transient media error.
    pub media_error_per_io: f64,
    /// Probability one attempt hangs until the command timeout.
    pub timeout_per_io: f64,
    /// Service beyond this reports [`IoOutcome::Timeout`]; also how
    /// long a hung command occupies the drive.
    pub command_timeout: SimDuration,
}

/// A fail-slow window: service times multiply by `factor` for
/// commands starting in `[start, until)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailSlowWindow {
    /// First instant of the limp.
    pub start: SimTime,
    /// End of the limp (exclusive).
    pub until: SimTime,
    /// Service-time multiplier (>= 1).
    pub factor: f64,
}

/// What one fault draw produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No fault: the command proceeds normally.
    None,
    /// Transient media error.
    MediaError,
    /// The drive hangs on this command.
    Timeout,
}

/// Per-I/O rates for the *silent* fault classes: commands the drive
/// acknowledges with `Ok` status while returning or persisting wrong
/// bytes. These are the lying-disk modes a checksum layer exists to
/// catch — the drive itself never reports them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SilentProfile {
    /// Probability one read returns flipped bits (transient: the
    /// platter is fine, only the transferred copy is wrong).
    pub bit_flip_per_read: f64,
    /// Probability one write persists only part of its payload.
    pub torn_write_per_io: f64,
    /// Probability one write is acknowledged but never reaches the
    /// platter (the old contents survive).
    pub lost_write_per_io: f64,
    /// Probability one write lands on a neighbouring location instead
    /// of its target (the target keeps its old contents and a victim
    /// is clobbered).
    pub misdirected_write_per_io: f64,
}

impl SilentProfile {
    /// All rates zero: the profile draws nothing and injects nothing.
    pub const NONE: SilentProfile = SilentProfile {
        bit_flip_per_read: 0.0,
        torn_write_per_io: 0.0,
        lost_write_per_io: 0.0,
        misdirected_write_per_io: 0.0,
    };

    /// True when any silent rate is non-zero.
    pub fn active(&self) -> bool {
        self.bit_flip_per_read > 0.0
            || self.torn_write_per_io > 0.0
            || self.lost_write_per_io > 0.0
            || self.misdirected_write_per_io > 0.0
    }
}

/// What one silent-write draw produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SilentWriteFault {
    /// The write persisted faithfully.
    None,
    /// Only part of the payload reached the platter.
    Torn,
    /// The write was acknowledged but never persisted.
    Lost,
    /// The write landed on a neighbouring location.
    Misdirected,
}

/// One disk's deterministic fault process.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: SplitMix64,
    fail_slow: Option<FailSlowWindow>,
    /// Silent corruption rates, drawn from their own stream so turning
    /// them on never perturbs the transient-fault draw sequence.
    silent: SilentProfile,
    silent_rng: SplitMix64,
    /// Patient mode: faults and timeout enforcement are bypassed (the
    /// controller is draining a condemned disk and will wait out any
    /// slowness rather than give up on it).
    patient: bool,
}

impl FaultInjector {
    /// Creates an injector over its own (already forked) RNG stream.
    pub fn new(profile: FaultProfile, rng: SplitMix64) -> FaultInjector {
        FaultInjector {
            profile,
            rng,
            fail_slow: None,
            silent: SilentProfile::NONE,
            silent_rng: SplitMix64::new(0),
            patient: false,
        }
    }

    /// Adds a fail-slow window.
    pub fn with_fail_slow(mut self, window: FailSlowWindow) -> FaultInjector {
        self.fail_slow = Some(window);
        self
    }

    /// Adds silent corruption rates over their own (already forked)
    /// RNG stream.
    pub fn with_silent(mut self, silent: SilentProfile, rng: SplitMix64) -> FaultInjector {
        self.silent = silent;
        self.silent_rng = rng;
        self
    }

    /// Installs silent corruption rates on an already-built injector
    /// (the transient profile and its stream are untouched, so adding
    /// corruption never perturbs an existing fault sequence).
    pub fn set_silent(&mut self, silent: SilentProfile, rng: SplitMix64) {
        self.silent = silent;
        self.silent_rng = rng;
    }

    /// Switches patient mode on or off.
    pub fn set_patient(&mut self, patient: bool) {
        self.patient = patient;
    }

    /// True while patient mode is active.
    pub fn is_patient(&self) -> bool {
        self.patient
    }

    /// The command timeout.
    pub fn command_timeout(&self) -> SimDuration {
        self.profile.command_timeout
    }

    /// The service-time multiplier for a command starting at `at`
    /// (1.0 outside any fail-slow window).
    pub fn slow_factor(&self, at: SimTime) -> f64 {
        match &self.fail_slow {
            Some(w) if at >= w.start && at < w.until => w.factor,
            _ => 1.0,
        }
    }

    /// Draws the fault for one attempt. Zero rates consume no random
    /// numbers; patient mode draws nothing at all.
    pub fn draw(&mut self) -> Fault {
        if self.patient {
            return Fault::None;
        }
        if self.profile.media_error_per_io > 0.0 && self.rng.chance(self.profile.media_error_per_io)
        {
            return Fault::MediaError;
        }
        if self.profile.timeout_per_io > 0.0 && self.rng.chance(self.profile.timeout_per_io) {
            return Fault::Timeout;
        }
        Fault::None
    }

    /// True when any silent corruption rate is configured.
    pub fn silent_active(&self) -> bool {
        self.silent.active()
    }

    /// Draws the silent fate of one write. Zero rates consume no
    /// random numbers; patient mode draws nothing at all (a condemned
    /// disk being drained is read-mostly and already on its way out).
    pub fn draw_silent_write(&mut self) -> SilentWriteFault {
        if self.patient {
            return SilentWriteFault::None;
        }
        if self.silent.torn_write_per_io > 0.0
            && self.silent_rng.chance(self.silent.torn_write_per_io)
        {
            return SilentWriteFault::Torn;
        }
        if self.silent.lost_write_per_io > 0.0
            && self.silent_rng.chance(self.silent.lost_write_per_io)
        {
            return SilentWriteFault::Lost;
        }
        if self.silent.misdirected_write_per_io > 0.0
            && self.silent_rng.chance(self.silent.misdirected_write_per_io)
        {
            return SilentWriteFault::Misdirected;
        }
        SilentWriteFault::None
    }

    /// Draws whether one read returns flipped bits. Zero rate consumes
    /// no random numbers; patient mode never flips.
    pub fn draw_read_flip(&mut self) -> bool {
        if self.patient {
            return false;
        }
        self.silent.bit_flip_per_read > 0.0 && self.silent_rng.chance(self.silent.bit_flip_per_read)
    }

    /// Resets the state that belonged to the physical unit after the
    /// drive is swapped for a spare: the fresh drive neither limps nor
    /// needs patient treatment. The ambient per-attempt rates remain —
    /// they model the environment, not the one bad drive.
    pub fn on_replace(&mut self) {
        self.fail_slow = None;
        self.patient = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(media: f64, timeout: f64) -> FaultProfile {
        FaultProfile {
            media_error_per_io: media,
            timeout_per_io: timeout,
            command_timeout: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn certain_rates_draw_their_faults() {
        let mut inj = FaultInjector::new(profile(1.0, 0.0), SplitMix64::new(1));
        assert_eq!(inj.draw(), Fault::MediaError);
        let mut inj = FaultInjector::new(profile(0.0, 1.0), SplitMix64::new(1));
        assert_eq!(inj.draw(), Fault::Timeout);
    }

    #[test]
    fn zero_rates_never_fault() {
        let mut inj = FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(7));
        for _ in 0..100 {
            assert_eq!(inj.draw(), Fault::None);
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let mut a = FaultInjector::new(profile(0.3, 0.2), SplitMix64::new(99));
        let mut b = FaultInjector::new(profile(0.3, 0.2), SplitMix64::new(99));
        for _ in 0..200 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn patient_mode_bypasses_draws() {
        let mut inj = FaultInjector::new(profile(1.0, 1.0), SplitMix64::new(1));
        inj.set_patient(true);
        assert_eq!(inj.draw(), Fault::None);
        inj.set_patient(false);
        assert_ne!(inj.draw(), Fault::None);
    }

    #[test]
    fn slow_factor_applies_only_inside_the_window() {
        let inj = FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1)).with_fail_slow(
            FailSlowWindow {
                start: SimTime::from_secs(10),
                until: SimTime::from_secs(20),
                factor: 8.0,
            },
        );
        assert_eq!(inj.slow_factor(SimTime::from_secs(5)), 1.0);
        assert_eq!(inj.slow_factor(SimTime::from_secs(10)), 8.0);
        assert_eq!(inj.slow_factor(SimTime::from_secs(19)), 8.0);
        assert_eq!(inj.slow_factor(SimTime::from_secs(20)), 1.0);
    }

    #[test]
    fn replace_clears_the_limp_and_patience() {
        let mut inj = FaultInjector::new(profile(0.5, 0.0), SplitMix64::new(1)).with_fail_slow(
            FailSlowWindow {
                start: SimTime::ZERO,
                until: SimTime::from_secs(100),
                factor: 4.0,
            },
        );
        inj.set_patient(true);
        inj.on_replace();
        assert!(!inj.is_patient());
        assert_eq!(inj.slow_factor(SimTime::from_secs(1)), 1.0);
    }

    #[test]
    fn outcome_helpers() {
        let t = SimTime::from_millis(3);
        assert_eq!(IoOutcome::Ok(t).expect_ok(), t);
        assert!(IoOutcome::Ok(t).is_ok());
        assert!(!IoOutcome::Failed.is_ok());
        assert_eq!(IoOutcome::MediaError(t).report_at(), Some(t));
        assert_eq!(IoOutcome::Failed.report_at(), None);
    }

    #[test]
    #[should_panic(expected = "did not succeed")]
    fn expect_ok_panics_on_fault() {
        let _ = IoOutcome::MediaError(SimTime::ZERO).expect_ok();
    }

    fn silent(flip: f64, torn: f64, lost: f64, misdirected: f64) -> SilentProfile {
        SilentProfile {
            bit_flip_per_read: flip,
            torn_write_per_io: torn,
            lost_write_per_io: lost,
            misdirected_write_per_io: misdirected,
        }
    }

    #[test]
    fn silent_profile_activity() {
        assert!(!SilentProfile::NONE.active());
        assert!(silent(0.0, 0.0, 1e-9, 0.0).active());
        let inj = FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1));
        assert!(!inj.silent_active());
    }

    #[test]
    fn certain_silent_rates_draw_their_faults() {
        let mk = |p| {
            FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1))
                .with_silent(p, SplitMix64::new(2))
        };
        assert_eq!(
            mk(silent(0.0, 1.0, 0.0, 0.0)).draw_silent_write(),
            SilentWriteFault::Torn
        );
        assert_eq!(
            mk(silent(0.0, 0.0, 1.0, 0.0)).draw_silent_write(),
            SilentWriteFault::Lost
        );
        assert_eq!(
            mk(silent(0.0, 0.0, 0.0, 1.0)).draw_silent_write(),
            SilentWriteFault::Misdirected
        );
        assert!(mk(silent(1.0, 0.0, 0.0, 0.0)).draw_read_flip());
    }

    #[test]
    fn zero_silent_rates_never_corrupt() {
        let mut inj = FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(7));
        for _ in 0..100 {
            assert_eq!(inj.draw_silent_write(), SilentWriteFault::None);
            assert!(!inj.draw_read_flip());
        }
    }

    /// The silent stream is independent of the transient stream:
    /// interleaving silent draws never changes the transient sequence.
    #[test]
    fn silent_draws_do_not_perturb_transient_draws() {
        let mut plain = FaultInjector::new(profile(0.3, 0.2), SplitMix64::new(99));
        let mut mixed = FaultInjector::new(profile(0.3, 0.2), SplitMix64::new(99))
            .with_silent(silent(0.5, 0.5, 0.2, 0.1), SplitMix64::new(123));
        for _ in 0..200 {
            let _ = mixed.draw_silent_write();
            let _ = mixed.draw_read_flip();
            assert_eq!(plain.draw(), mixed.draw());
        }
    }

    #[test]
    fn silent_draws_are_deterministic_per_seed() {
        let mk = || {
            FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1))
                .with_silent(silent(0.3, 0.2, 0.1, 0.05), SplitMix64::new(77))
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..200 {
            assert_eq!(a.draw_silent_write(), b.draw_silent_write());
            assert_eq!(a.draw_read_flip(), b.draw_read_flip());
        }
    }

    #[test]
    fn patient_mode_bypasses_silent_draws() {
        let mut inj = FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1))
            .with_silent(silent(1.0, 1.0, 1.0, 1.0), SplitMix64::new(2));
        inj.set_patient(true);
        assert_eq!(inj.draw_silent_write(), SilentWriteFault::None);
        assert!(!inj.draw_read_flip());
        inj.set_patient(false);
        assert_ne!(inj.draw_silent_write(), SilentWriteFault::None);
    }
}
