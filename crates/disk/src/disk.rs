//! The disk service-time state machine.
//!
//! A [`Disk`] is a sequential server: requests are serviced one at a
//! time in submission order (the AFRAID paper runs FCFS at the array
//! back end). Service time is computed mechanistically:
//!
//! ```text
//! service = command overhead
//!         + seek (two-regime curve over cylinder distance)
//!         + rotational latency (exact, from the angular position of
//!           the spindle at the moment the seek completes)
//!         + media transfer (sector times, plus head/cylinder switch
//!           costs for runs crossing track boundaries)
//! ```
//!
//! The spindle's angular position is a pure function of simulated time
//! and the disk's spin phase; giving all disks the same phase yields
//! the spin-synchronised array the paper assumes.

use afraid_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::cache::SegmentedCache;
use crate::fault::{Fault, FaultInjector, IoOutcome};
use crate::geometry::Chs;
use crate::model::DiskModel;
use crate::SECTOR_BYTES;

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media (write-through; no immediate report).
    Write,
}

/// A request addressed to one disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskRequest {
    /// Starting logical block address (sector number).
    pub lba: u64,
    /// Number of sectors to transfer (must be non-zero).
    pub sectors: u64,
    /// Transfer direction.
    pub op: OpKind,
}

/// Aggregate per-disk statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Total sectors transferred.
    pub sectors: u64,
    /// Total time spent seeking.
    pub seek_time: SimDuration,
    /// Total rotational latency.
    pub rotation_time: SimDuration,
    /// Total media transfer time.
    pub transfer_time: SimDuration,
    /// Total busy time (all service components).
    pub busy_time: SimDuration,
    /// Reads served from the on-drive cache.
    pub cache_hits: u64,
    /// Commands that reported a transient media error.
    pub media_errors: u64,
    /// Commands that exceeded the command timeout.
    pub timeouts: u64,
}

/// One disk drive.
pub struct Disk {
    model: DiskModel,
    cache: SegmentedCache,
    /// Spindle phase offset; equal phases = spin-synchronised.
    phase: SimDuration,
    /// Arm position after the last serviced request.
    cur_cyl: u32,
    /// The disk is busy until this instant.
    free_at: SimTime,
    failed: bool,
    stats: DiskStats,
    /// Transient-fault process, if fault injection is configured.
    faults: Option<FaultInjector>,
}

impl Disk {
    /// Creates a disk with the given model and spin phase, with the
    /// on-drive cache disabled (the paper's configuration).
    pub fn new(model: DiskModel, phase: SimDuration) -> Self {
        Disk {
            model,
            cache: SegmentedCache::disabled(),
            phase,
            cur_cyl: 0,
            free_at: SimTime::ZERO,
            failed: false,
            stats: DiskStats::default(),
            faults: None,
        }
    }

    /// Enables the on-drive segmented cache.
    pub fn with_cache(mut self, cache: SegmentedCache) -> Self {
        self.cache = cache;
        self
    }

    /// Installs a transient-fault process. Without one the disk never
    /// faults and [`Disk::submit`] always returns [`IoOutcome::Ok`]
    /// (or [`IoOutcome::Failed`] once [`Disk::fail`] is called).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Mutable access to the installed fault process, if any. The
    /// array layer uses this to draw the *silent* fates of its
    /// commands — the disk itself only models the reported faults.
    pub fn fault_injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.faults.as_mut()
    }

    /// Switches patient mode: the fault process stops drawing faults
    /// and timeouts are not enforced, so commands always succeed —
    /// merely slowly, if a fail-slow window is active. Used while a
    /// condemned disk's stripes are drained before eviction. No-op
    /// without an injector.
    pub fn set_patient(&mut self, patient: bool) {
        if let Some(inj) = &mut self.faults {
            inj.set_patient(patient);
        }
    }

    /// The disk's parameter set.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.model.geometry.capacity_sectors()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The instant the disk next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the disk is still working at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.free_at > now
    }

    /// Marks the disk failed; subsequent submissions return
    /// [`IoOutcome::Failed`] without any physical I/O.
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Swaps in a spare: the fresh drive starts idle at cylinder 0
    /// with no history — statistics, the busy horizon, the cache and
    /// any fail-slow limp all belong to the unit that was pulled.
    pub fn replace(&mut self) {
        self.failed = false;
        self.cur_cyl = 0;
        self.cache.clear();
        self.free_at = SimTime::ZERO;
        self.stats = DiskStats::default();
        if let Some(inj) = &mut self.faults {
            inj.on_replace();
        }
    }

    /// True once [`Disk::fail`] has been called.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Submits a request at `now`. The disk starts it when it becomes
    /// free; the returned [`IoOutcome`] carries the instant the result
    /// is reported to the controller.
    ///
    /// A failed disk returns [`IoOutcome::Failed`] with no physical
    /// I/O. A media error consumes the full service time before it is
    /// reported. A timed-out command occupies the drive until the
    /// command timeout (a hang ends with the drive's internal reset),
    /// or — for a fail-slow overrun — until its inflated service
    /// completes, while the controller hears the timeout at the
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty or runs past the end of the disk.
    pub fn submit(&mut self, now: SimTime, req: &DiskRequest) -> IoOutcome {
        if self.failed {
            return IoOutcome::Failed;
        }
        assert!(req.sectors > 0, "empty request");
        assert!(
            req.lba + req.sectors <= self.capacity_sectors(),
            "request [{}, {}) beyond capacity {}",
            req.lba,
            req.lba + req.sectors,
            self.capacity_sectors()
        );
        let start = now.max(self.free_at);
        let mut service = self.service_time(start, req);
        if let Some(inj) = &mut self.faults {
            let factor = inj.slow_factor(start);
            if factor > 1.0 {
                service = service.mul_f64(factor);
            }
            match inj.draw() {
                Fault::MediaError => {
                    self.free_at = start + service;
                    self.stats.busy_time += service;
                    self.stats.media_errors += 1;
                    return IoOutcome::MediaError(self.free_at);
                }
                Fault::Timeout => {
                    let hang = inj.command_timeout();
                    self.free_at = start + hang;
                    self.stats.busy_time += hang;
                    self.stats.timeouts += 1;
                    return IoOutcome::Timeout(self.free_at);
                }
                Fault::None => {
                    if !inj.is_patient() && service > inj.command_timeout() {
                        let report = start + inj.command_timeout();
                        self.free_at = start + service;
                        self.stats.busy_time += service;
                        self.stats.timeouts += 1;
                        return IoOutcome::Timeout(report);
                    }
                }
            }
        }
        self.free_at = start + service;
        self.stats.busy_time += service;
        self.stats.sectors += req.sectors;
        match req.op {
            OpKind::Read => self.stats.reads += 1,
            OpKind::Write => self.stats.writes += 1,
        }
        IoOutcome::Ok(self.free_at)
    }

    /// Computes the service time of `req` starting at `start`, updating
    /// arm position and cache state.
    fn service_time(&mut self, start: SimTime, req: &DiskRequest) -> SimDuration {
        match req.op {
            OpKind::Read => {
                if self.cache.hit(req.lba, req.sectors) {
                    self.stats.cache_hits += 1;
                    return self.bus_time(req.sectors) + self.model.read_overhead;
                }
            }
            OpKind::Write => {
                self.cache.invalidate(req.lba, req.sectors);
            }
        }

        let overhead = match req.op {
            OpKind::Read => self.model.read_overhead,
            OpKind::Write => self.model.write_overhead,
        };
        let target = self.model.geometry.locate(req.lba);

        // Seek.
        let distance = self.cur_cyl.abs_diff(target.cyl);
        let seek = self.model.seek.time(distance);
        self.stats.seek_time += seek;

        // Rotational latency: wait for the first target sector's
        // physical slot to rotate under the head.
        let at = start + overhead + seek;
        let spt = self.model.geometry.sectors_per_track(target.cyl);
        let slot = self.physical_slot(target, spt);
        let rot = self.rotation_wait(at, slot, spt);
        self.stats.rotation_time += rot;

        // Media transfer, walking track boundaries. Track and cylinder
        // skew are assumed to exactly hide switch realignment, so each
        // boundary costs the switch time and transfer then continues.
        let transfer = self.transfer_time(target, req.sectors);
        self.stats.transfer_time += transfer;

        // The arm finishes at the last cylinder touched.
        let end = self.model.geometry.locate(req.lba + req.sectors - 1);
        self.cur_cyl = end.cyl;

        if req.op == OpKind::Read {
            self.cache.insert(req.lba, req.sectors);
        }

        overhead + seek + rot + transfer
    }

    /// The physical rotational slot of a logical sector, applying track
    /// and cylinder skew.
    fn physical_slot(&self, chs: Chs, spt: u32) -> u32 {
        let skew = u64::from(chs.head) * u64::from(self.model.track_skew)
            + u64::from(chs.cyl) * u64::from(self.model.cylinder_skew);
        ((u64::from(chs.sector) + skew) % u64::from(spt)) as u32
    }

    /// Time until rotational slot `slot` (of `spt` slots) is under the
    /// head, given absolute time `at` and the spin phase.
    fn rotation_wait(&self, at: SimTime, slot: u32, spt: u32) -> SimDuration {
        let rev_ns = self.model.revolution().as_nanos();
        let angle_ns = (at.as_nanos() + self.phase.as_nanos()) % rev_ns;
        // Start of the target slot, in nanoseconds around the track.
        let slot_ns = u128::from(slot) * u128::from(rev_ns) / u128::from(spt);
        let slot_ns = slot_ns as u64;
        let wait = if slot_ns >= angle_ns {
            slot_ns - angle_ns
        } else {
            rev_ns - (angle_ns - slot_ns)
        };
        SimDuration::from_nanos(wait)
    }

    /// Pure media transfer time for `sectors` starting at `chs`,
    /// including head/cylinder switch costs at track boundaries.
    fn transfer_time(&self, mut chs: Chs, mut sectors: u64) -> SimDuration {
        let geom = &self.model.geometry;
        let mut total = SimDuration::ZERO;
        loop {
            let spt = geom.sectors_per_track(chs.cyl);
            let on_track = u64::from(spt - chs.sector).min(sectors);
            total += self.model.sector_time(spt) * on_track;
            sectors -= on_track;
            if sectors == 0 {
                return total;
            }
            // Cross to the next track.
            chs.sector = 0;
            if chs.head + 1 < geom.heads() {
                chs.head += 1;
                total += self.model.head_switch;
            } else {
                chs.head = 0;
                chs.cyl += 1;
                total += self.model.seek.track_to_track();
            }
        }
    }

    /// Bus transfer time for a cache hit.
    fn bus_time(&self, sectors: u64) -> SimDuration {
        SimDuration::from_secs_f64(sectors as f64 * SECTOR_BYTES as f64 / self.model.bus_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_disk() -> Disk {
        Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
    }

    fn read(lba: u64, sectors: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors,
            op: OpKind::Read,
        }
    }

    fn write(lba: u64, sectors: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors,
            op: OpKind::Write,
        }
    }

    #[test]
    fn first_sector_at_time_zero_is_free_of_seek_and_rotation() {
        // Head starts at cylinder 0; LBA 0's slot is 0; at t=0 the
        // spindle is at angle 0. Only the transfer remains.
        let mut d = test_disk();
        let done = d.submit(SimTime::ZERO, &read(0, 1)).expect_ok();
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(100));
        assert_eq!(d.stats().seek_time, SimDuration::ZERO);
        assert_eq!(d.stats().rotation_time, SimDuration::ZERO);
    }

    #[test]
    fn rotational_latency_waits_for_slot() {
        // Sector 50 of track 0 sits half a revolution away: 5 ms wait
        // plus 100 us transfer.
        let mut d = test_disk();
        let done = d.submit(SimTime::ZERO, &read(50, 1)).expect_ok();
        assert_eq!(
            done,
            SimTime::ZERO + SimDuration::from_millis(5) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn rotation_wraps_around() {
        // At t = 6 ms the spindle is at slot 60; targeting slot 50
        // requires waiting 9 ms (90 slots).
        let mut d = test_disk();
        let t0 = SimTime::from_millis(6);
        let done = d.submit(t0, &read(50, 1)).expect_ok();
        assert_eq!(
            done,
            t0 + SimDuration::from_millis(9) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn seek_adds_curve_time() {
        let mut d = test_disk();
        // Cylinder 10 = LBA 4000. Seek from 0 to 10 = 2.0 ms (the
        // calibration point), landing at spindle angle 2.0 ms = slot 20;
        // target slot 0 needs an 8 ms wait, then 100 us transfer.
        let done = d.submit(SimTime::ZERO, &read(4000, 1)).expect_ok();
        let expect = SimDuration::from_millis(2)
            + SimDuration::from_millis(8)
            + SimDuration::from_micros(100);
        assert_eq!(done, SimTime::ZERO + expect);
        assert_eq!(d.stats().seek_time, SimDuration::from_millis(2));
    }

    #[test]
    fn sequential_submission_is_fcfs() {
        let mut d = test_disk();
        let first = d.submit(SimTime::ZERO, &read(0, 10)).expect_ok();
        let second = d.submit(SimTime::ZERO, &read(10, 10)).expect_ok();
        assert!(second > first);
        assert!(d.is_busy(SimTime::ZERO));
        assert!(!d.is_busy(second));
        assert_eq!(d.free_at(), second);
    }

    #[test]
    fn back_to_back_sequential_reads_stream() {
        // Reading the next sectors right where the head sits should
        // cost pure transfer time: no seek, no rotation gap.
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(0, 10)).expect_ok();
        let rot_before = d.stats().rotation_time;
        let t2 = d.submit(t1, &read(10, 10)).expect_ok();
        assert_eq!(t2 - t1, SimDuration::from_micros(1000));
        assert_eq!(d.stats().rotation_time, rot_before);
    }

    #[test]
    fn track_crossing_adds_head_switch() {
        let mut d = test_disk();
        // 150 sectors from LBA 0: 100 on head 0, head switch (500 us),
        // 50 on head 1. Skew is zero on the test disk, so the switch is
        // a pure cost.
        let done = d.submit(SimTime::ZERO, &read(0, 150)).expect_ok();
        let expect = SimDuration::from_micros(100) * 150 + SimDuration::from_micros(500);
        assert_eq!(done, SimTime::ZERO + expect);
    }

    #[test]
    fn cylinder_crossing_adds_track_to_track_seek() {
        let mut d = test_disk();
        // A full cylinder is 400 sectors; read 410 starting at 0:
        // 3 head switches within cylinder 0 plus one cylinder switch.
        let done = d.submit(SimTime::ZERO, &read(0, 410)).expect_ok();
        let expect = SimDuration::from_micros(100) * 410
            + SimDuration::from_micros(500) * 3
            + SimDuration::from_millis(1); // track-to-track = 1 ms calibration
        assert_eq!(done, SimTime::ZERO + expect);
    }

    #[test]
    fn writes_cost_at_least_as_much_as_reads() {
        let m = DiskModel::hp_c3325();
        let mut dr = Disk::new(m.clone(), SimDuration::ZERO);
        let mut dw = Disk::new(m, SimDuration::ZERO);
        let tr = dr.submit(SimTime::ZERO, &read(5000, 16)).expect_ok();
        let tw = dw.submit(SimTime::ZERO, &write(5000, 16)).expect_ok();
        assert!(tw >= tr, "write {tw} < read {tr}");
    }

    #[test]
    fn arm_position_persists_between_requests() {
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(4000, 1)).expect_ok(); // cylinder 10
        d.submit(t1, &read(4000, 1)).expect_ok(); // same cylinder: no seek
        assert_eq!(d.stats().seek_time, SimDuration::from_millis(2));
    }

    #[test]
    fn cache_hit_skips_mechanics() {
        let mut d = Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
            .with_cache(SegmentedCache::new(4, 256));
        let t1 = d.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        let t2 = d.submit(t1, &read(50, 8)).expect_ok();
        // Bus time for 8 sectors at 10 MB/s = 409.6 us, well under the
        // mechanical time.
        assert!(t2 - t1 < SimDuration::from_millis(1));
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn write_invalidates_cache() {
        let mut d = Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
            .with_cache(SegmentedCache::new(4, 256));
        let t1 = d.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        let t2 = d.submit(t1, &write(52, 2)).expect_ok();
        let t3 = d.submit(t2, &read(50, 8)).expect_ok();
        assert_eq!(d.stats().cache_hits, 0);
        assert!(t3 - t2 > SimDuration::from_millis(1));
    }

    #[test]
    fn spin_phase_shifts_rotation() {
        let mut a = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let mut b = Disk::new(DiskModel::test_disk(), SimDuration::from_millis(5));
        let ta = a.submit(SimTime::ZERO, &read(0, 1)).expect_ok();
        let tb = b.submit(SimTime::ZERO, &read(0, 1)).expect_ok();
        assert_ne!(ta, tb);
    }

    #[test]
    fn spin_synchronised_disks_agree() {
        let mut a = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let mut b = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let ta = a.submit(SimTime::from_millis(3), &read(70, 4)).expect_ok();
        let tb = b.submit(SimTime::from_millis(3), &read(70, 4)).expect_ok();
        assert_eq!(ta, tb);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(0, 4)).expect_ok();
        d.submit(t1, &write(4000, 4)).expect_ok();
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sectors, 8);
        assert!(s.busy_time > SimDuration::ZERO);
    }

    #[test]
    fn failed_disk_reports_failed_outcome() {
        let mut d = test_disk();
        d.fail();
        assert_eq!(d.submit(SimTime::ZERO, &read(0, 1)), IoOutcome::Failed);
    }

    #[test]
    fn replace_restores_service_with_a_fresh_history() {
        let mut d = test_disk();
        let t = d.submit(SimTime::ZERO, &read(0, 4)).expect_ok();
        assert!(t > SimTime::ZERO);
        d.fail();
        assert!(d.is_failed());
        d.replace();
        assert!(!d.is_failed());
        // The spare carries none of the pulled unit's state.
        assert_eq!(d.stats().reads, 0);
        assert_eq!(d.stats().busy_time, SimDuration::ZERO);
        assert_eq!(d.free_at(), SimTime::ZERO);
        let _ = d.submit(SimTime::ZERO, &read(0, 1)).expect_ok();
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_request_rejected() {
        let mut d = test_disk();
        let cap = d.capacity_sectors();
        let _ = d.submit(SimTime::ZERO, &read(cap - 1, 2)).expect_ok();
    }

    #[test]
    fn c3325_small_read_service_time_plausible() {
        // A random 8 KB read on the C3325 should land in the 10-30 ms
        // band (overhead + avg seek ~10ms + avg rotation ~5.5ms +
        // ~1.5ms transfer).
        let mut d = Disk::new(DiskModel::hp_c3325(), SimDuration::ZERO);
        let mut total = SimDuration::ZERO;
        let mut t = SimTime::ZERO;
        let mut rng = afraid_sim::rng::SplitMix64::new(42);
        let cap = d.capacity_sectors();
        for _ in 0..200 {
            let lba = rng.next_below(cap - 16);
            let begin = t + SimDuration::from_millis(50); // idle gaps
            let done = d.submit(begin, &read(lba, 16)).expect_ok();
            total += done - begin;
            t = done;
        }
        let mean_ms = total.as_millis_f64() / 200.0;
        assert!((10.0..30.0).contains(&mean_ms), "mean service {mean_ms} ms");
    }

    use crate::fault::{FailSlowWindow, FaultProfile};
    use afraid_sim::rng::SplitMix64;

    fn profile(media: f64, timeout: f64) -> FaultProfile {
        FaultProfile {
            media_error_per_io: media,
            timeout_per_io: timeout,
            command_timeout: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn media_error_consumes_full_service() {
        let mut faulty = test_disk();
        faulty.set_fault_injector(FaultInjector::new(profile(1.0, 0.0), SplitMix64::new(1)));
        let mut clean = test_disk();
        let ok = clean.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        match faulty.submit(SimTime::ZERO, &read(50, 8)) {
            IoOutcome::MediaError(at) => assert_eq!(at, ok),
            other => panic!("expected media error, got {other:?}"),
        }
        assert_eq!(faulty.stats().media_errors, 1);
        assert_eq!(faulty.stats().reads, 0);
        assert_eq!(faulty.free_at(), ok);
    }

    #[test]
    fn timeout_occupies_the_drive_for_the_command_timeout() {
        let mut d = test_disk();
        d.set_fault_injector(FaultInjector::new(profile(0.0, 1.0), SplitMix64::new(1)));
        match d.submit(SimTime::ZERO, &read(50, 8)) {
            IoOutcome::Timeout(at) => {
                assert_eq!(at, SimTime::ZERO + SimDuration::from_millis(500));
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(d.stats().timeouts, 1);
        assert_eq!(d.free_at(), SimTime::from_millis(500));
    }

    #[test]
    fn fail_slow_inflates_service_and_overruns_the_timeout() {
        // Inside the window every mechanical service is multiplied;
        // once the inflated service exceeds the command timeout the
        // controller hears a timeout at the deadline while the drive
        // keeps grinding until the inflated completion.
        let mut d = test_disk();
        d.set_fault_injector(
            FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(1)).with_fail_slow(
                FailSlowWindow {
                    start: SimTime::ZERO,
                    until: SimTime::from_secs(100),
                    factor: 200.0,
                },
            ),
        );
        let mut clean = test_disk();
        let ok = clean.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        let service = ok.since(SimTime::ZERO);
        match d.submit(SimTime::ZERO, &read(50, 8)) {
            IoOutcome::Timeout(at) => {
                assert_eq!(at, SimTime::ZERO + SimDuration::from_millis(500));
            }
            other => panic!("expected overrun timeout, got {other:?}"),
        }
        assert_eq!(d.free_at(), SimTime::ZERO + service.mul_f64(200.0));
    }

    #[test]
    fn patient_mode_serves_slow_commands_without_timeouts() {
        let mut d = test_disk();
        d.set_fault_injector(
            FaultInjector::new(profile(1.0, 0.0), SplitMix64::new(1)).with_fail_slow(
                FailSlowWindow {
                    start: SimTime::ZERO,
                    until: SimTime::from_secs(100),
                    factor: 200.0,
                },
            ),
        );
        d.set_patient(true);
        let mut clean = test_disk();
        let ok = clean.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        let done = d.submit(SimTime::ZERO, &read(50, 8)).expect_ok();
        assert_eq!(done, SimTime::ZERO + ok.since(SimTime::ZERO).mul_f64(200.0));
        assert_eq!(d.stats().media_errors, 0);
        assert_eq!(d.stats().timeouts, 0);
    }

    #[test]
    fn inert_injector_leaves_completions_bit_identical() {
        let mut with = test_disk();
        with.set_fault_injector(FaultInjector::new(profile(0.0, 0.0), SplitMix64::new(9)));
        let mut without = test_disk();
        let mut t_with = SimTime::ZERO;
        let mut t_without = SimTime::ZERO;
        for lba in [0u64, 4000, 50, 123, 9000] {
            t_with = with.submit(t_with, &read(lba, 8)).expect_ok();
            t_without = without.submit(t_without, &read(lba, 8)).expect_ok();
            assert_eq!(t_with, t_without);
        }
    }
}
