//! The disk service-time state machine.
//!
//! A [`Disk`] is a sequential server: requests are serviced one at a
//! time in submission order (the AFRAID paper runs FCFS at the array
//! back end). Service time is computed mechanistically:
//!
//! ```text
//! service = command overhead
//!         + seek (two-regime curve over cylinder distance)
//!         + rotational latency (exact, from the angular position of
//!           the spindle at the moment the seek completes)
//!         + media transfer (sector times, plus head/cylinder switch
//!           costs for runs crossing track boundaries)
//! ```
//!
//! The spindle's angular position is a pure function of simulated time
//! and the disk's spin phase; giving all disks the same phase yields
//! the spin-synchronised array the paper assumes.

use afraid_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::cache::SegmentedCache;
use crate::geometry::Chs;
use crate::model::DiskModel;
use crate::SECTOR_BYTES;

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Transfer from media to host.
    Read,
    /// Transfer from host to media (write-through; no immediate report).
    Write,
}

/// A request addressed to one disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskRequest {
    /// Starting logical block address (sector number).
    pub lba: u64,
    /// Number of sectors to transfer (must be non-zero).
    pub sectors: u64,
    /// Transfer direction.
    pub op: OpKind,
}

/// Aggregate per-disk statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DiskStats {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Total sectors transferred.
    pub sectors: u64,
    /// Total time spent seeking.
    pub seek_time: SimDuration,
    /// Total rotational latency.
    pub rotation_time: SimDuration,
    /// Total media transfer time.
    pub transfer_time: SimDuration,
    /// Total busy time (all service components).
    pub busy_time: SimDuration,
    /// Reads served from the on-drive cache.
    pub cache_hits: u64,
}

/// One disk drive.
pub struct Disk {
    model: DiskModel,
    cache: SegmentedCache,
    /// Spindle phase offset; equal phases = spin-synchronised.
    phase: SimDuration,
    /// Arm position after the last serviced request.
    cur_cyl: u32,
    /// The disk is busy until this instant.
    free_at: SimTime,
    failed: bool,
    stats: DiskStats,
}

impl Disk {
    /// Creates a disk with the given model and spin phase, with the
    /// on-drive cache disabled (the paper's configuration).
    pub fn new(model: DiskModel, phase: SimDuration) -> Self {
        Disk {
            model,
            cache: SegmentedCache::disabled(),
            phase,
            cur_cyl: 0,
            free_at: SimTime::ZERO,
            failed: false,
            stats: DiskStats::default(),
        }
    }

    /// Enables the on-drive segmented cache.
    pub fn with_cache(mut self, cache: SegmentedCache) -> Self {
        self.cache = cache;
        self
    }

    /// The disk's parameter set.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.model.geometry.capacity_sectors()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// The instant the disk next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// True if the disk is still working at `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        self.free_at > now
    }

    /// Marks the disk failed; subsequent submissions panic, so callers
    /// must check [`Disk::is_failed`] first (the array controller stops
    /// routing I/O to failed disks).
    pub fn fail(&mut self) {
        self.failed = true;
    }

    /// Restores a replaced disk to service (used by rebuild tests).
    pub fn replace(&mut self) {
        self.failed = false;
        self.cur_cyl = 0;
        self.cache.clear();
    }

    /// True once [`Disk::fail`] has been called.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Submits a request at `now`. The disk starts it when it becomes
    /// free and returns the absolute completion time.
    ///
    /// # Panics
    ///
    /// Panics if the disk has failed, the request is empty, or it runs
    /// past the end of the disk.
    pub fn submit(&mut self, now: SimTime, req: &DiskRequest) -> SimTime {
        assert!(!self.failed, "I/O submitted to failed disk");
        assert!(req.sectors > 0, "empty request");
        assert!(
            req.lba + req.sectors <= self.capacity_sectors(),
            "request [{}, {}) beyond capacity {}",
            req.lba,
            req.lba + req.sectors,
            self.capacity_sectors()
        );
        let start = now.max(self.free_at);
        let service = self.service_time(start, req);
        self.free_at = start + service;
        self.stats.busy_time += service;
        self.stats.sectors += req.sectors;
        match req.op {
            OpKind::Read => self.stats.reads += 1,
            OpKind::Write => self.stats.writes += 1,
        }
        self.free_at
    }

    /// Computes the service time of `req` starting at `start`, updating
    /// arm position and cache state.
    fn service_time(&mut self, start: SimTime, req: &DiskRequest) -> SimDuration {
        match req.op {
            OpKind::Read => {
                if self.cache.hit(req.lba, req.sectors) {
                    self.stats.cache_hits += 1;
                    return self.bus_time(req.sectors) + self.model.read_overhead;
                }
            }
            OpKind::Write => {
                self.cache.invalidate(req.lba, req.sectors);
            }
        }

        let overhead = match req.op {
            OpKind::Read => self.model.read_overhead,
            OpKind::Write => self.model.write_overhead,
        };
        let target = self.model.geometry.locate(req.lba);

        // Seek.
        let distance = self.cur_cyl.abs_diff(target.cyl);
        let seek = self.model.seek.time(distance);
        self.stats.seek_time += seek;

        // Rotational latency: wait for the first target sector's
        // physical slot to rotate under the head.
        let at = start + overhead + seek;
        let spt = self.model.geometry.sectors_per_track(target.cyl);
        let slot = self.physical_slot(target, spt);
        let rot = self.rotation_wait(at, slot, spt);
        self.stats.rotation_time += rot;

        // Media transfer, walking track boundaries. Track and cylinder
        // skew are assumed to exactly hide switch realignment, so each
        // boundary costs the switch time and transfer then continues.
        let transfer = self.transfer_time(target, req.sectors);
        self.stats.transfer_time += transfer;

        // The arm finishes at the last cylinder touched.
        let end = self.model.geometry.locate(req.lba + req.sectors - 1);
        self.cur_cyl = end.cyl;

        if req.op == OpKind::Read {
            self.cache.insert(req.lba, req.sectors);
        }

        overhead + seek + rot + transfer
    }

    /// The physical rotational slot of a logical sector, applying track
    /// and cylinder skew.
    fn physical_slot(&self, chs: Chs, spt: u32) -> u32 {
        let skew = u64::from(chs.head) * u64::from(self.model.track_skew)
            + u64::from(chs.cyl) * u64::from(self.model.cylinder_skew);
        ((u64::from(chs.sector) + skew) % u64::from(spt)) as u32
    }

    /// Time until rotational slot `slot` (of `spt` slots) is under the
    /// head, given absolute time `at` and the spin phase.
    fn rotation_wait(&self, at: SimTime, slot: u32, spt: u32) -> SimDuration {
        let rev_ns = self.model.revolution().as_nanos();
        let angle_ns = (at.as_nanos() + self.phase.as_nanos()) % rev_ns;
        // Start of the target slot, in nanoseconds around the track.
        let slot_ns = u128::from(slot) * u128::from(rev_ns) / u128::from(spt);
        let slot_ns = slot_ns as u64;
        let wait = if slot_ns >= angle_ns {
            slot_ns - angle_ns
        } else {
            rev_ns - (angle_ns - slot_ns)
        };
        SimDuration::from_nanos(wait)
    }

    /// Pure media transfer time for `sectors` starting at `chs`,
    /// including head/cylinder switch costs at track boundaries.
    fn transfer_time(&self, mut chs: Chs, mut sectors: u64) -> SimDuration {
        let geom = &self.model.geometry;
        let mut total = SimDuration::ZERO;
        loop {
            let spt = geom.sectors_per_track(chs.cyl);
            let on_track = u64::from(spt - chs.sector).min(sectors);
            total += self.model.sector_time(spt) * on_track;
            sectors -= on_track;
            if sectors == 0 {
                return total;
            }
            // Cross to the next track.
            chs.sector = 0;
            if chs.head + 1 < geom.heads() {
                chs.head += 1;
                total += self.model.head_switch;
            } else {
                chs.head = 0;
                chs.cyl += 1;
                total += self.model.seek.track_to_track();
            }
        }
    }

    /// Bus transfer time for a cache hit.
    fn bus_time(&self, sectors: u64) -> SimDuration {
        SimDuration::from_secs_f64(sectors as f64 * SECTOR_BYTES as f64 / self.model.bus_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_disk() -> Disk {
        Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
    }

    fn read(lba: u64, sectors: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors,
            op: OpKind::Read,
        }
    }

    fn write(lba: u64, sectors: u64) -> DiskRequest {
        DiskRequest {
            lba,
            sectors,
            op: OpKind::Write,
        }
    }

    #[test]
    fn first_sector_at_time_zero_is_free_of_seek_and_rotation() {
        // Head starts at cylinder 0; LBA 0's slot is 0; at t=0 the
        // spindle is at angle 0. Only the transfer remains.
        let mut d = test_disk();
        let done = d.submit(SimTime::ZERO, &read(0, 1));
        assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(100));
        assert_eq!(d.stats().seek_time, SimDuration::ZERO);
        assert_eq!(d.stats().rotation_time, SimDuration::ZERO);
    }

    #[test]
    fn rotational_latency_waits_for_slot() {
        // Sector 50 of track 0 sits half a revolution away: 5 ms wait
        // plus 100 us transfer.
        let mut d = test_disk();
        let done = d.submit(SimTime::ZERO, &read(50, 1));
        assert_eq!(
            done,
            SimTime::ZERO + SimDuration::from_millis(5) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn rotation_wraps_around() {
        // At t = 6 ms the spindle is at slot 60; targeting slot 50
        // requires waiting 9 ms (90 slots).
        let mut d = test_disk();
        let t0 = SimTime::from_millis(6);
        let done = d.submit(t0, &read(50, 1));
        assert_eq!(
            done,
            t0 + SimDuration::from_millis(9) + SimDuration::from_micros(100)
        );
    }

    #[test]
    fn seek_adds_curve_time() {
        let mut d = test_disk();
        // Cylinder 10 = LBA 4000. Seek from 0 to 10 = 2.0 ms (the
        // calibration point), landing at spindle angle 2.0 ms = slot 20;
        // target slot 0 needs an 8 ms wait, then 100 us transfer.
        let done = d.submit(SimTime::ZERO, &read(4000, 1));
        let expect = SimDuration::from_millis(2)
            + SimDuration::from_millis(8)
            + SimDuration::from_micros(100);
        assert_eq!(done, SimTime::ZERO + expect);
        assert_eq!(d.stats().seek_time, SimDuration::from_millis(2));
    }

    #[test]
    fn sequential_submission_is_fcfs() {
        let mut d = test_disk();
        let first = d.submit(SimTime::ZERO, &read(0, 10));
        let second = d.submit(SimTime::ZERO, &read(10, 10));
        assert!(second > first);
        assert!(d.is_busy(SimTime::ZERO));
        assert!(!d.is_busy(second));
        assert_eq!(d.free_at(), second);
    }

    #[test]
    fn back_to_back_sequential_reads_stream() {
        // Reading the next sectors right where the head sits should
        // cost pure transfer time: no seek, no rotation gap.
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(0, 10));
        let rot_before = d.stats().rotation_time;
        let t2 = d.submit(t1, &read(10, 10));
        assert_eq!(t2 - t1, SimDuration::from_micros(1000));
        assert_eq!(d.stats().rotation_time, rot_before);
    }

    #[test]
    fn track_crossing_adds_head_switch() {
        let mut d = test_disk();
        // 150 sectors from LBA 0: 100 on head 0, head switch (500 us),
        // 50 on head 1. Skew is zero on the test disk, so the switch is
        // a pure cost.
        let done = d.submit(SimTime::ZERO, &read(0, 150));
        let expect = SimDuration::from_micros(100) * 150 + SimDuration::from_micros(500);
        assert_eq!(done, SimTime::ZERO + expect);
    }

    #[test]
    fn cylinder_crossing_adds_track_to_track_seek() {
        let mut d = test_disk();
        // A full cylinder is 400 sectors; read 410 starting at 0:
        // 3 head switches within cylinder 0 plus one cylinder switch.
        let done = d.submit(SimTime::ZERO, &read(0, 410));
        let expect = SimDuration::from_micros(100) * 410
            + SimDuration::from_micros(500) * 3
            + SimDuration::from_millis(1); // track-to-track = 1 ms calibration
        assert_eq!(done, SimTime::ZERO + expect);
    }

    #[test]
    fn writes_cost_at_least_as_much_as_reads() {
        let m = DiskModel::hp_c3325();
        let mut dr = Disk::new(m.clone(), SimDuration::ZERO);
        let mut dw = Disk::new(m, SimDuration::ZERO);
        let tr = dr.submit(SimTime::ZERO, &read(5000, 16));
        let tw = dw.submit(SimTime::ZERO, &write(5000, 16));
        assert!(tw >= tr, "write {tw} < read {tr}");
    }

    #[test]
    fn arm_position_persists_between_requests() {
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(4000, 1)); // cylinder 10
        d.submit(t1, &read(4000, 1)); // same cylinder: no seek
        assert_eq!(d.stats().seek_time, SimDuration::from_millis(2));
    }

    #[test]
    fn cache_hit_skips_mechanics() {
        let mut d = Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
            .with_cache(SegmentedCache::new(4, 256));
        let t1 = d.submit(SimTime::ZERO, &read(50, 8));
        let t2 = d.submit(t1, &read(50, 8));
        // Bus time for 8 sectors at 10 MB/s = 409.6 us, well under the
        // mechanical time.
        assert!(t2 - t1 < SimDuration::from_millis(1));
        assert_eq!(d.stats().cache_hits, 1);
    }

    #[test]
    fn write_invalidates_cache() {
        let mut d = Disk::new(DiskModel::test_disk(), SimDuration::ZERO)
            .with_cache(SegmentedCache::new(4, 256));
        let t1 = d.submit(SimTime::ZERO, &read(50, 8));
        let t2 = d.submit(t1, &write(52, 2));
        let t3 = d.submit(t2, &read(50, 8));
        assert_eq!(d.stats().cache_hits, 0);
        assert!(t3 - t2 > SimDuration::from_millis(1));
    }

    #[test]
    fn spin_phase_shifts_rotation() {
        let mut a = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let mut b = Disk::new(DiskModel::test_disk(), SimDuration::from_millis(5));
        let ta = a.submit(SimTime::ZERO, &read(0, 1));
        let tb = b.submit(SimTime::ZERO, &read(0, 1));
        assert_ne!(ta, tb);
    }

    #[test]
    fn spin_synchronised_disks_agree() {
        let mut a = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let mut b = Disk::new(DiskModel::test_disk(), SimDuration::ZERO);
        let ta = a.submit(SimTime::from_millis(3), &read(70, 4));
        let tb = b.submit(SimTime::from_millis(3), &read(70, 4));
        assert_eq!(ta, tb);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = test_disk();
        let t1 = d.submit(SimTime::ZERO, &read(0, 4));
        d.submit(t1, &write(4000, 4));
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sectors, 8);
        assert!(s.busy_time > SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "failed disk")]
    fn failed_disk_rejects_io() {
        let mut d = test_disk();
        d.fail();
        let _ = d.submit(SimTime::ZERO, &read(0, 1));
    }

    #[test]
    fn replace_restores_service() {
        let mut d = test_disk();
        d.fail();
        assert!(d.is_failed());
        d.replace();
        assert!(!d.is_failed());
        let _ = d.submit(SimTime::ZERO, &read(0, 1));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_request_rejected() {
        let mut d = test_disk();
        let cap = d.capacity_sectors();
        let _ = d.submit(SimTime::ZERO, &read(cap - 1, 2));
    }

    #[test]
    fn c3325_small_read_service_time_plausible() {
        // A random 8 KB read on the C3325 should land in the 10-30 ms
        // band (overhead + avg seek ~10ms + avg rotation ~5.5ms +
        // ~1.5ms transfer).
        let mut d = Disk::new(DiskModel::hp_c3325(), SimDuration::ZERO);
        let mut total = SimDuration::ZERO;
        let mut t = SimTime::ZERO;
        let mut rng = afraid_sim::rng::SplitMix64::new(42);
        let cap = d.capacity_sectors();
        for _ in 0..200 {
            let lba = rng.next_below(cap - 16);
            let begin = t + SimDuration::from_millis(50); // idle gaps
            let done = d.submit(begin, &read(lba, 16));
            total += done - begin;
            t = done;
        }
        let mean_ms = total.as_millis_f64() / 200.0;
        assert!((10.0..30.0).contains(&mean_ms), "mean service {mean_ms} ms");
    }
}
