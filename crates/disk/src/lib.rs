//! Calibrated disk drive model in the style of Ruemmler & Wilkes,
//! *An introduction to disk drive modeling* (IEEE Computer, 1994).
//!
//! The AFRAID paper drove its Pantheon simulation with "calibrated disk
//! models" of the HP C3325 (2 GB, 3.5", 5400 RPM). This crate rebuilds
//! that model class from the published description:
//!
//! * **Zoned geometry** — outer zones hold more sectors per track, so
//!   transfer rate falls from ~5.5 MB/s at the rim to ~3.7 MB/s at the
//!   hub ([`geometry`]).
//! * **Seek curve** — square-root-shaped for short seeks (arm
//!   acceleration-limited), linear for long seeks (coast-limited),
//!   with a separate single-cylinder settle time ([`seek`]).
//! * **Rotational position** — the head's angular position is a pure
//!   function of simulated time, so rotational latency is computed
//!   exactly, and spin-synchronised arrays fall out for free by giving
//!   every disk the same phase ([`disk`]).
//! * **Skewed layout** — track and cylinder skew hide head-switch and
//!   track-to-track-seek times during sequential transfers.
//! * **On-drive cache** — a small segmented read cache with optional
//!   read-ahead ([`cache`]). The AFRAID experiments run with it
//!   disabled, as the paper deliberately minimised cache effects.
//! * **Request schedulers** — FCFS, CLOOK, SSTF and SCAN ([`sched`]);
//!   the paper uses CLOOK in the host driver and FCFS at the back end.
//! * **Transient faults** — an optional deterministic per-I/O fault
//!   process: media errors, command timeouts, fail-slow service
//!   inflation, and the silent classes (bit-flip reads, torn / lost /
//!   misdirected writes) that a checksum layer exists to catch
//!   ([`fault`]).
//!
//! The model is deterministic: a request's service time depends only on
//! the disk state and the simulated clock.

pub mod cache;
pub mod disk;
pub mod fault;
pub mod geometry;
pub mod model;
pub mod sched;
pub mod seek;

pub use cache::SegmentedCache;
pub use disk::{Disk, DiskRequest, DiskStats, OpKind};
pub use fault::{
    FailSlowWindow, FaultInjector, FaultProfile, IoOutcome, SilentProfile, SilentWriteFault,
};
pub use geometry::{Chs, Geometry, Zone};
pub use model::DiskModel;
pub use sched::{Policy, Scheduler};
pub use seek::SeekProfile;

/// Bytes per sector, fixed at the 512-byte standard of the era.
pub const SECTOR_BYTES: u64 = 512;
