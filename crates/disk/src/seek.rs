//! The seek-time curve.
//!
//! Ruemmler & Wilkes model seek time as two regimes: short seeks are
//! dominated by arm acceleration and settle, giving a curve proportional
//! to the square root of the distance; long seeks coast at maximum arm
//! velocity, giving a linear tail. A single-cylinder seek is mostly
//! settle time.

use afraid_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Two-regime seek-time profile.
///
/// For a seek of `d > 0` cylinders:
///
/// ```text
/// t(d) = short_a + short_b * sqrt(d)        if d < crossover
/// t(d) = long_a  + long_b  * d              otherwise
/// ```
///
/// all in milliseconds. A zero-distance seek costs nothing.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SeekProfile {
    /// Constant term of the square-root regime (ms).
    pub short_a: f64,
    /// Square-root coefficient (ms / sqrt(cyl)).
    pub short_b: f64,
    /// Distance (cylinders) where the linear regime takes over.
    pub crossover: u32,
    /// Constant term of the linear regime (ms).
    pub long_a: f64,
    /// Linear coefficient (ms / cyl).
    pub long_b: f64,
}

impl SeekProfile {
    /// Builds a profile from three calibration points: the
    /// single-cylinder time, the time at the crossover distance, and
    /// the full-stroke time, mirroring how the published models were
    /// fitted from measured curves.
    ///
    /// # Panics
    ///
    /// Panics if the points are not increasing in time/distance.
    pub fn from_calibration(
        single_cyl_ms: f64,
        crossover: u32,
        crossover_ms: f64,
        max_cyl: u32,
        max_ms: f64,
    ) -> Self {
        assert!(crossover > 1 && max_cyl > crossover, "bad distances");
        assert!(
            single_cyl_ms > 0.0 && crossover_ms > single_cyl_ms && max_ms > crossover_ms,
            "seek times must increase with distance"
        );
        // Fit short regime through (1, single) and (crossover, crossover_ms).
        let s1 = 1.0f64.sqrt();
        let sc = f64::from(crossover).sqrt();
        let short_b = (crossover_ms - single_cyl_ms) / (sc - s1);
        let short_a = single_cyl_ms - short_b * s1;
        // Fit linear regime through (crossover, crossover_ms) and (max, max_ms)
        // so the curve is continuous at the crossover.
        let long_b = (max_ms - crossover_ms) / f64::from(max_cyl - crossover);
        let long_a = crossover_ms - long_b * f64::from(crossover);
        SeekProfile {
            short_a,
            short_b,
            crossover,
            long_a,
            long_b,
        }
    }

    /// Seek time for a move of `distance` cylinders.
    pub fn time(&self, distance: u32) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = f64::from(distance);
        let ms = if distance < self.crossover {
            self.short_a + self.short_b * d.sqrt()
        } else {
            self.long_a + self.long_b * d
        };
        SimDuration::from_millis_f64(ms.max(0.0))
    }

    /// Single-cylinder (track-to-track) seek time.
    pub fn track_to_track(&self) -> SimDuration {
        self.time(1)
    }

    /// Mean seek time over uniformly random start/end cylinders on a
    /// disk with `cylinders` cylinders, computed by direct summation of
    /// the exact distance distribution (P(d) ∝ 2(C-d) for d ≥ 1).
    pub fn mean_random(&self, cylinders: u32) -> SimDuration {
        let c = u64::from(cylinders);
        let total_pairs = c * c;
        let mut acc_ns = 0.0f64;
        for d in 1..cylinders {
            let weight = 2 * (c - u64::from(d));
            acc_ns += self.time(d).as_nanos() as f64 * weight as f64;
        }
        SimDuration::from_nanos((acc_ns / total_pairs as f64).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SeekProfile {
        // Roughly the HP C3325 shape: 2.5 ms track-to-track, ~9.5 ms at
        // the crossover, 22 ms full stroke over 4310 cylinders.
        SeekProfile::from_calibration(2.5, 600, 9.5, 4310, 22.0)
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(profile().time(0), SimDuration::ZERO);
    }

    #[test]
    fn calibration_points_hit() {
        let p = profile();
        let t1 = p.time(1).as_millis_f64();
        assert!((t1 - 2.5).abs() < 1e-9, "t1 {t1}");
        let tc = p.time(600).as_millis_f64();
        assert!((tc - 9.5).abs() < 1e-6, "tc {tc}");
        let tm = p.time(4310).as_millis_f64();
        assert!((tm - 22.0).abs() < 1e-6, "tm {tm}");
    }

    #[test]
    fn continuous_at_crossover() {
        let p = profile();
        let before = p.time(599).as_millis_f64();
        let after = p.time(600).as_millis_f64();
        assert!((after - before).abs() < 0.1, "jump {before} -> {after}");
    }

    #[test]
    fn monotone_nondecreasing() {
        let p = profile();
        let mut last = SimDuration::ZERO;
        for d in 0..4310 {
            let t = p.time(d);
            assert!(t >= last, "seek time decreased at d={d}");
            last = t;
        }
    }

    #[test]
    fn track_to_track() {
        assert_eq!(profile().track_to_track(), profile().time(1));
    }

    #[test]
    fn mean_random_seek_in_plausible_band() {
        // The spec-sheet "average seek" of disks in this class is
        // ~9.5-11 ms; the exact distance-weighted mean should land near
        // the published value.
        let mean = profile().mean_random(4310).as_millis_f64();
        assert!((8.0..14.0).contains(&mean), "mean seek {mean}");
    }

    #[test]
    #[should_panic(expected = "seek times must increase")]
    fn rejects_nonmonotone_calibration() {
        let _ = SeekProfile::from_calibration(5.0, 100, 4.0, 1000, 22.0);
    }
}
