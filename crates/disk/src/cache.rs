//! On-drive segmented read cache.
//!
//! Disks of the C3325 generation carried a small (64–512 KB) buffer
//! split into a handful of segments, each holding one contiguous run of
//! recently read (or read-ahead) sectors. A read that hits a segment is
//! served at bus rate with no mechanical delay.
//!
//! The AFRAID experiments run with the drive cache disabled (the paper
//! takes pains to exclude cache effects from the comparison), but the
//! model is provided — and tested — so that the disk model is complete
//! and cache sensitivity can be explored in the ablation bench.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A contiguous cached run of sectors `[start, start + len)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Segment {
    start: u64,
    len: u64,
}

impl Segment {
    fn contains(&self, lba: u64, sectors: u64) -> bool {
        lba >= self.start && lba + sectors <= self.start + self.len
    }

    fn overlaps(&self, lba: u64, sectors: u64) -> bool {
        lba < self.start + self.len && self.start < lba + sectors
    }
}

/// LRU-replaced segmented cache over sector runs.
///
/// # Examples
///
/// ```
/// use afraid_disk::cache::SegmentedCache;
///
/// let mut c = SegmentedCache::new(2, 128);
/// c.insert(1000, 64);
/// assert!(c.hit(1010, 8));
/// assert!(!c.hit(2000, 8));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SegmentedCache {
    /// Most recently used at the back.
    segments: VecDeque<Segment>,
    max_segments: usize,
    max_segment_sectors: u64,
    hits: u64,
    misses: u64,
}

impl SegmentedCache {
    /// Creates a cache with `max_segments` segments, each capped at
    /// `max_segment_sectors` sectors.
    ///
    /// A cache with zero segments is valid and never hits — that is the
    /// configuration the AFRAID experiments use.
    pub fn new(max_segments: usize, max_segment_sectors: u64) -> Self {
        SegmentedCache {
            segments: VecDeque::new(),
            max_segments,
            max_segment_sectors,
            hits: 0,
            misses: 0,
        }
    }

    /// A disabled cache (never hits).
    pub fn disabled() -> Self {
        SegmentedCache::new(0, 0)
    }

    /// True if the whole run `[lba, lba+sectors)` is cached; updates
    /// LRU order and hit statistics.
    pub fn hit(&mut self, lba: u64, sectors: u64) -> bool {
        if let Some(i) = self.segments.iter().position(|s| s.contains(lba, sectors)) {
            if let Some(seg) = self.segments.remove(i) {
                self.segments.push_back(seg);
            }
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts a run that was just read from the media (or read ahead),
    /// truncated to the segment size, evicting the least recently used
    /// segment if full.
    pub fn insert(&mut self, lba: u64, sectors: u64) {
        if self.max_segments == 0 || sectors == 0 {
            return;
        }
        let len = sectors.min(self.max_segment_sectors);
        // Merge with an adjacent/overlapping segment if the new run
        // extends it forward (the common sequential pattern).
        if let Some(i) = self
            .segments
            .iter()
            .position(|s| s.overlaps(lba, len) || s.start + s.len == lba)
        {
            if let Some(mut seg) = self.segments.remove(i) {
                let end = (lba + len).max(seg.start + seg.len);
                seg.start = seg.start.min(lba);
                seg.len = (end - seg.start).min(self.max_segment_sectors);
                self.segments.push_back(seg);
            }
            return;
        }
        if self.segments.len() == self.max_segments {
            self.segments.pop_front();
        }
        self.segments.push_back(Segment { start: lba, len });
    }

    /// Invalidates any segment overlapping a written range (the model
    /// is write-through and does not cache written data).
    pub fn invalidate(&mut self, lba: u64, sectors: u64) {
        self.segments.retain(|s| !s.overlaps(lba, sectors));
    }

    /// Drops all cached data.
    pub fn clear(&mut self) {
        self.segments.clear();
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses() {
        let mut c = SegmentedCache::new(4, 64);
        assert!(!c.hit(0, 8));
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = SegmentedCache::disabled();
        c.insert(0, 64);
        assert!(!c.hit(0, 8));
    }

    #[test]
    fn hit_requires_full_containment() {
        let mut c = SegmentedCache::new(4, 64);
        c.insert(100, 10);
        assert!(c.hit(100, 10));
        assert!(c.hit(105, 5));
        assert!(!c.hit(105, 6)); // extends past the segment
        assert!(!c.hit(99, 2)); // starts before it
    }

    #[test]
    fn lru_eviction() {
        let mut c = SegmentedCache::new(2, 64);
        c.insert(0, 8);
        c.insert(100, 8);
        assert!(c.hit(0, 8)); // touch 0 so 100 becomes LRU
        c.insert(200, 8); // evicts 100
        assert!(!c.hit(100, 8));
        assert!(c.hit(0, 8));
        assert!(c.hit(200, 8));
    }

    #[test]
    fn sequential_runs_merge() {
        let mut c = SegmentedCache::new(2, 128);
        c.insert(0, 32);
        c.insert(32, 32);
        assert!(c.hit(0, 64));
        // Still only one segment used: a second distinct insert must
        // not evict the merged run.
        c.insert(1000, 8);
        assert!(c.hit(0, 64));
    }

    #[test]
    fn segment_size_cap() {
        let mut c = SegmentedCache::new(1, 16);
        c.insert(0, 100);
        assert!(c.hit(0, 16));
        assert!(!c.hit(0, 17));
    }

    #[test]
    fn write_invalidates() {
        let mut c = SegmentedCache::new(4, 64);
        c.insert(0, 64);
        c.invalidate(10, 4);
        assert!(!c.hit(0, 8));
    }

    #[test]
    fn invalidate_misses_nonoverlapping() {
        let mut c = SegmentedCache::new(4, 64);
        c.insert(0, 8);
        c.invalidate(8, 8);
        assert!(c.hit(0, 8));
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = SegmentedCache::new(4, 64);
        c.insert(0, 8);
        c.clear();
        assert!(!c.hit(0, 8));
    }
}
