//! Disk model parameter sets.
//!
//! A [`DiskModel`] bundles everything needed to compute a request's
//! service time: geometry, seek profile, spindle speed, switch times,
//! skews, command overheads and bus rate. Presets are provided for the
//! HP C3325 — the drive the AFRAID paper modelled — and for a trivially
//! simple disk used to make unit tests readable.

use afraid_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::geometry::{Geometry, Zone};
use crate::seek::SeekProfile;

/// Complete parameter set for one disk drive model.
///
/// # Examples
///
/// ```
/// use afraid_disk::model::DiskModel;
///
/// let m = DiskModel::hp_c3325();
/// // 5400 RPM: one revolution every ~11.1 ms.
/// assert!((m.revolution().as_millis_f64() - 11.11).abs() < 0.01);
/// // ~2 GB formatted.
/// let gb = m.geometry.capacity_bytes() as f64 / 1e9;
/// assert!((1.9..2.1).contains(&gb));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DiskModel {
    /// Marketing name, e.g. `"HP C3325"`.
    pub name: String,
    /// Zoned geometry.
    pub geometry: Geometry,
    /// Seek-time curve.
    pub seek: SeekProfile,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Time to switch between heads of one cylinder.
    pub head_switch: SimDuration,
    /// Per-command controller overhead for reads.
    pub read_overhead: SimDuration,
    /// Per-command controller overhead for writes (write settle makes
    /// it slightly larger).
    pub write_overhead: SimDuration,
    /// Track skew in sectors: rotational offset between consecutive
    /// tracks of a cylinder, sized to hide the head switch.
    pub track_skew: u32,
    /// Cylinder skew in sectors: additional offset between the last
    /// track of a cylinder and the first of the next.
    pub cylinder_skew: u32,
    /// SCSI bus transfer rate in bytes per second (used for cache hits).
    pub bus_rate: f64,
}

impl DiskModel {
    /// The HP C3325: 2 GB, 3.5-inch, 5400 RPM SCSI-2 drive.
    ///
    /// Calibration follows the published datasheet class: 2.5 ms
    /// track-to-track, ~10 ms average seek, 22 ms full stroke,
    /// 5400 RPM (11.1 ms revolution), zoned transfer rate of roughly
    /// 3.5–5.5 MB/s, 10 MB/s SCSI-2 bus. The zone table is chosen to
    /// give the drive's 2 GB formatted capacity.
    pub fn hp_c3325() -> Self {
        // 9 data heads, 8 zones, 4310 cylinders. Outer tracks carry 120
        // sectors (5.5 MB/s at 5400 RPM), inner tracks 76 (3.5 MB/s).
        let zones = vec![
            Zone {
                cylinders: 640,
                sectors_per_track: 120,
            },
            Zone {
                cylinders: 600,
                sectors_per_track: 114,
            },
            Zone {
                cylinders: 580,
                sectors_per_track: 108,
            },
            Zone {
                cylinders: 560,
                sectors_per_track: 102,
            },
            Zone {
                cylinders: 540,
                sectors_per_track: 96,
            },
            Zone {
                cylinders: 500,
                sectors_per_track: 88,
            },
            Zone {
                cylinders: 460,
                sectors_per_track: 82,
            },
            Zone {
                cylinders: 430,
                sectors_per_track: 76,
            },
        ];
        let geometry = Geometry::new(9, zones);
        DiskModel {
            name: "HP C3325".to_string(),
            geometry,
            seek: SeekProfile::from_calibration(2.5, 600, 9.5, 4310, 22.0),
            rpm: 5400.0,
            head_switch: SimDuration::from_micros(1_000),
            read_overhead: SimDuration::from_micros(700),
            write_overhead: SimDuration::from_micros(900),
            track_skew: 12,
            cylinder_skew: 20,
            bus_rate: 10.0e6,
        }
    }

    /// An older-generation drive for sensitivity studies: 1 GB,
    /// 3.5-inch, 5400 RPM, in the HP C2247 class (the workstation
    /// drive of \[Ruemmler93\]'s traced systems).
    pub fn hp_c2247() -> Self {
        let zones = vec![
            Zone {
                cylinders: 500,
                sectors_per_track: 96,
            },
            Zone {
                cylinders: 450,
                sectors_per_track: 88,
            },
            Zone {
                cylinders: 420,
                sectors_per_track: 80,
            },
            Zone {
                cylinders: 400,
                sectors_per_track: 72,
            },
            Zone {
                cylinders: 280,
                sectors_per_track: 64,
            },
        ];
        let geometry = Geometry::new(13, zones);
        DiskModel {
            name: "HP C2247".to_string(),
            geometry,
            seek: SeekProfile::from_calibration(2.5, 500, 10.0, 2050, 23.0),
            rpm: 5400.0,
            head_switch: SimDuration::from_micros(1_400),
            read_overhead: SimDuration::from_micros(1_100),
            write_overhead: SimDuration::from_micros(1_300),
            track_skew: 10,
            cylinder_skew: 18,
            bus_rate: 10.0e6,
        }
    }

    /// A faster next-generation drive for sensitivity studies: 4 GB,
    /// 3.5-inch, 7200 RPM, Barracuda-class.
    pub fn barracuda_7200() -> Self {
        let zones = vec![
            Zone {
                cylinders: 900,
                sectors_per_track: 150,
            },
            Zone {
                cylinders: 850,
                sectors_per_track: 140,
            },
            Zone {
                cylinders: 800,
                sectors_per_track: 130,
            },
            Zone {
                cylinders: 750,
                sectors_per_track: 120,
            },
            Zone {
                cylinders: 700,
                sectors_per_track: 110,
            },
            Zone {
                cylinders: 650,
                sectors_per_track: 100,
            },
            Zone {
                cylinders: 600,
                sectors_per_track: 92,
            },
        ];
        let geometry = Geometry::new(12, zones);
        DiskModel {
            name: "Barracuda 7200".to_string(),
            geometry,
            seek: SeekProfile::from_calibration(1.7, 700, 8.0, 5250, 17.0),
            rpm: 7200.0,
            head_switch: SimDuration::from_micros(800),
            read_overhead: SimDuration::from_micros(500),
            write_overhead: SimDuration::from_micros(700),
            track_skew: 16,
            cylinder_skew: 26,
            bus_rate: 20.0e6,
        }
    }

    /// A deliberately simple disk for unit tests: one zone, constant
    /// 100 sectors/track, 4 heads, 100 cylinders, 6000 RPM (10 ms
    /// revolution → 100 µs/sector), zero skew and overhead-free.
    pub fn test_disk() -> Self {
        let geometry = Geometry::new(
            4,
            vec![Zone {
                cylinders: 100,
                sectors_per_track: 100,
            }],
        );
        DiskModel {
            name: "test".to_string(),
            geometry,
            seek: SeekProfile::from_calibration(1.0, 10, 2.0, 100, 5.0),
            rpm: 6000.0,
            head_switch: SimDuration::from_micros(500),
            read_overhead: SimDuration::ZERO,
            write_overhead: SimDuration::ZERO,
            track_skew: 0,
            cylinder_skew: 0,
            bus_rate: 10.0e6,
        }
    }

    /// Duration of one spindle revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm)
    }

    /// Time for one sector to pass under the head on a track with
    /// `spt` sectors.
    pub fn sector_time(&self, spt: u32) -> SimDuration {
        self.revolution() / u64::from(spt)
    }

    /// Media transfer rate (bytes/s) at the given cylinder.
    pub fn media_rate(&self, cyl: u32) -> f64 {
        let spt = self.geometry.sectors_per_track(cyl);
        u64::from(spt) as f64 * crate::SECTOR_BYTES as f64 / self.revolution().as_secs_f64()
    }

    /// Capacity-weighted mean sustained media rate (bytes/s), used for
    /// scrub planning (the paper's "5 MB/s sustained" figure).
    pub fn sustained_rate(&self) -> f64 {
        let mut bytes = 0.0;
        let mut secs = 0.0;
        for z in self.geometry.zones() {
            let tracks = u64::from(z.cylinders) * u64::from(self.geometry.heads());
            let zone_bytes =
                tracks as f64 * u64::from(z.sectors_per_track) as f64 * crate::SECTOR_BYTES as f64;
            bytes += zone_bytes;
            secs += tracks as f64 * self.revolution().as_secs_f64();
        }
        bytes / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c3325_capacity_is_about_2gb() {
        let m = DiskModel::hp_c3325();
        let gb = m.geometry.capacity_bytes() as f64 / 1e9;
        assert!((1.9..2.1).contains(&gb), "capacity {gb} GB");
    }

    #[test]
    fn c3325_revolution_at_5400rpm() {
        let m = DiskModel::hp_c3325();
        let rev_ms = m.revolution().as_millis_f64();
        assert!((rev_ms - 11.111).abs() < 0.01, "rev {rev_ms} ms");
    }

    #[test]
    fn c3325_transfer_rates_span_zones() {
        let m = DiskModel::hp_c3325();
        let outer = m.media_rate(0) / 1e6;
        let inner = m.media_rate(m.geometry.cylinders() - 1) / 1e6;
        assert!(outer > inner, "outer {outer} inner {inner}");
        assert!((5.0..6.0).contains(&outer), "outer rate {outer} MB/s");
        assert!((3.0..4.0).contains(&inner), "inner rate {inner} MB/s");
    }

    #[test]
    fn c3325_sustained_rate_near_5mb() {
        // The paper: "2GB disks that can read at a sustained rate of
        // 5MB/s" (the whole-disk scrub takes ~10 minutes at this rate).
        let m = DiskModel::hp_c3325();
        let rate = m.sustained_rate() / 1e6;
        assert!((4.0..5.6).contains(&rate), "sustained {rate} MB/s");
        let scrub_minutes = m.geometry.capacity_bytes() as f64 / m.sustained_rate() / 60.0;
        assert!(
            (5.0..12.0).contains(&scrub_minutes),
            "scrub {scrub_minutes} min"
        );
    }

    #[test]
    fn sector_time_scales_with_spt() {
        let m = DiskModel::test_disk();
        // 10 ms revolution, 100 sectors/track -> 100 us/sector.
        assert_eq!(m.sector_time(100), SimDuration::from_micros(100));
        assert_eq!(m.sector_time(50), SimDuration::from_micros(200));
    }

    #[test]
    fn test_disk_capacity() {
        let m = DiskModel::test_disk();
        assert_eq!(m.geometry.capacity_sectors(), 100 * 4 * 100);
    }

    #[test]
    fn c2247_is_smaller_and_slower() {
        let old = DiskModel::hp_c2247();
        let new = DiskModel::hp_c3325();
        let gb = old.geometry.capacity_bytes() as f64 / 1e9;
        assert!((0.8..1.3).contains(&gb), "capacity {gb} GB");
        assert!(old.sustained_rate() < new.sustained_rate());
        assert!(old.read_overhead > new.read_overhead);
    }

    #[test]
    fn barracuda_is_bigger_and_faster() {
        let fast = DiskModel::barracuda_7200();
        let base = DiskModel::hp_c3325();
        let gb = fast.geometry.capacity_bytes() as f64 / 1e9;
        assert!((3.5..4.6).contains(&gb), "capacity {gb} GB");
        assert!(fast.revolution() < base.revolution());
        assert!(fast.sustained_rate() > base.sustained_rate() * 1.5);
        let mean = fast
            .seek
            .mean_random(fast.geometry.cylinders())
            .as_millis_f64();
        assert!((6.0..11.0).contains(&mean), "mean seek {mean} ms");
    }

    #[test]
    fn c3325_mean_seek_close_to_spec() {
        let m = DiskModel::hp_c3325();
        let mean = m.seek.mean_random(m.geometry.cylinders()).as_millis_f64();
        assert!((8.0..13.0).contains(&mean), "mean seek {mean} ms");
    }
}
