//! Request scheduling policies.
//!
//! The AFRAID experiments use CLOOK in the host device driver (sorting
//! by array logical block address) and FCFS in the per-disk back-end
//! queues (\[Worthington94\]). SSTF and SCAN are included for
//! completeness and for the ablation bench.

use serde::{Deserialize, Serialize};

/// Scheduling discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// First come, first served.
    Fcfs,
    /// Circular LOOK: service in ascending position order, wrapping to
    /// the lowest pending position after the highest.
    Clook,
    /// Shortest seek time first: nearest position next.
    Sstf,
    /// Elevator: sweep up, then down.
    Scan,
}

/// A position-aware request queue.
///
/// Items are tagged with a one-dimensional position (cylinder or
/// logical block address); [`Scheduler::pop`] picks the next item
/// according to the policy and the position of the previous pop.
///
/// # Examples
///
/// ```
/// use afraid_disk::sched::{Policy, Scheduler};
///
/// let mut s = Scheduler::new(Policy::Clook);
/// s.push(50, "c");
/// s.push(10, "a");
/// s.push(30, "b");
/// assert_eq!(s.pop(), Some("a"));
/// assert_eq!(s.pop(), Some("b"));
/// assert_eq!(s.pop(), Some("c"));
/// ```
#[derive(Clone, Debug)]
pub struct Scheduler<T> {
    policy: Policy,
    /// Pending items: `(position, arrival sequence, item)`.
    queue: Vec<(u64, u64, T)>,
    next_seq: u64,
    head_pos: u64,
    /// SCAN sweep direction: true = ascending.
    ascending: bool,
}

impl<T> Scheduler<T> {
    /// Creates an empty queue with the given policy.
    pub fn new(policy: Policy) -> Self {
        Scheduler {
            policy,
            queue: Vec::new(),
            next_seq: 0,
            head_pos: 0,
            ascending: true,
        }
    }

    /// Enqueues an item at the given position.
    pub fn push(&mut self, pos: u64, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push((pos, seq, item));
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Removes and returns the next item per the policy.
    pub fn pop(&mut self) -> Option<T> {
        if self.queue.is_empty() {
            return None;
        }
        // Every pick returns `Some` for a non-empty queue; the `?`
        // keeps the selection typed instead of panicking on the
        // (structurally impossible) miss.
        let idx = match self.policy {
            Policy::Fcfs => self.pick_fcfs(),
            Policy::Clook => self.pick_clook(),
            Policy::Sstf => self.pick_sstf(),
            Policy::Scan => self.pick_scan(),
        }?;
        let (pos, _, item) = self.queue.swap_remove(idx);
        self.head_pos = pos;
        Some(item)
    }

    /// Index of the oldest item (`None` only on an empty queue).
    fn pick_fcfs(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, seq, _))| seq)
            .map(|(i, _)| i)
    }

    /// Index of the item with the smallest position `>= head_pos`,
    /// falling back to the globally smallest (the wrap). Ties broken by
    /// arrival order.
    fn pick_clook(&self) -> Option<usize> {
        let ahead = self
            .queue
            .iter()
            .enumerate()
            .filter(|(_, &(pos, _, _))| pos >= self.head_pos)
            .min_by_key(|(_, &(pos, seq, _))| (pos, seq))
            .map(|(i, _)| i);
        ahead.or_else(|| {
            self.queue
                .iter()
                .enumerate()
                .min_by_key(|(_, &(pos, seq, _))| (pos, seq))
                .map(|(i, _)| i)
        })
    }

    /// Index of the item nearest to `head_pos`. Ties broken by arrival
    /// order.
    fn pick_sstf(&self) -> Option<usize> {
        self.queue
            .iter()
            .enumerate()
            .min_by_key(|(_, &(pos, seq, _))| (pos.abs_diff(self.head_pos), seq))
            .map(|(i, _)| i)
    }

    /// SCAN: continue the sweep; reverse when nothing remains ahead.
    /// The direction flip only happens with items still queued (`pop`
    /// checked), so the sweep state never changes on an empty queue.
    fn pick_scan(&mut self) -> Option<usize> {
        let pick_dir = |queue: &[(u64, u64, T)], head: u64, asc: bool| -> Option<usize> {
            queue
                .iter()
                .enumerate()
                .filter(|(_, &(pos, _, _))| if asc { pos >= head } else { pos <= head })
                .min_by_key(|(_, &(pos, seq, _))| (pos.abs_diff(head), seq))
                .map(|(i, _)| i)
        };
        if let Some(i) = pick_dir(&self.queue, self.head_pos, self.ascending) {
            return Some(i);
        }
        self.ascending = !self.ascending;
        pick_dir(&self.queue, self.head_pos, self.ascending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(s: &mut Scheduler<u32>) -> Vec<u32> {
        std::iter::from_fn(|| s.pop()).collect()
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut s = Scheduler::new(Policy::Fcfs);
        for (pos, id) in [(50, 1), (10, 2), (90, 3), (10, 4)] {
            s.push(pos, id);
        }
        assert_eq!(drain(&mut s), vec![1, 2, 3, 4]);
    }

    #[test]
    fn clook_ascends_then_wraps() {
        let mut s = Scheduler::new(Policy::Clook);
        for (pos, id) in [(50, 1), (10, 2), (90, 3)] {
            s.push(pos, id);
        }
        // Head starts at 0: ascending order 10, 50, 90.
        assert_eq!(drain(&mut s), vec![2, 1, 3]);
    }

    #[test]
    fn clook_wrap_behaviour() {
        let mut s = Scheduler::new(Policy::Clook);
        s.push(50, 1);
        assert_eq!(s.pop(), Some(1)); // head now at 50
        s.push(10, 2);
        s.push(70, 3);
        // 70 is ahead of the head; 10 requires the wrap.
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
    }

    #[test]
    fn clook_ties_fifo() {
        let mut s = Scheduler::new(Policy::Clook);
        s.push(10, 1);
        s.push(10, 2);
        assert_eq!(drain(&mut s), vec![1, 2]);
    }

    #[test]
    fn sstf_picks_nearest() {
        let mut s = Scheduler::new(Policy::Sstf);
        s.push(100, 1);
        s.push(5, 2);
        s.push(40, 3);
        // Head at 0: nearest is 5, then 40, then 100.
        assert_eq!(drain(&mut s), vec![2, 3, 1]);
    }

    #[test]
    fn sstf_follows_head() {
        let mut s = Scheduler::new(Policy::Sstf);
        s.push(100, 1);
        assert_eq!(s.pop(), Some(1)); // head at 100
        s.push(5, 2);
        s.push(90, 3);
        assert_eq!(s.pop(), Some(3));
    }

    #[test]
    fn scan_sweeps_and_reverses() {
        let mut s = Scheduler::new(Policy::Scan);
        for (pos, id) in [(50, 1), (10, 2), (90, 3)] {
            s.push(pos, id);
        }
        // Ascending from 0: 10, 50, 90.
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        // Before reaching 90, something below arrives: SCAN must finish
        // the up-sweep first.
        s.push(20, 4);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(4)); // then reverses
    }

    #[test]
    fn empty_pop_is_none() {
        let mut s: Scheduler<u32> = Scheduler::new(Policy::Clook);
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn len_tracks_queue() {
        let mut s = Scheduler::new(Policy::Fcfs);
        s.push(1, 1);
        s.push(2, 2);
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn all_policies_drain_everything() {
        for policy in [Policy::Fcfs, Policy::Clook, Policy::Sstf, Policy::Scan] {
            let mut s = Scheduler::new(policy);
            for i in 0..50u32 {
                s.push(u64::from(i * 37 % 100), i);
            }
            let mut out = drain(&mut s);
            out.sort_unstable();
            assert_eq!(out, (0..50).collect::<Vec<_>>(), "policy {policy:?}");
        }
    }
}
