//! Zoned disk geometry and logical-to-physical address mapping.
//!
//! Modern (for 1995) disks use zoned recording: cylinders are grouped
//! into zones, and outer zones pack more sectors per track because the
//! linear bit density is constant while the circumference grows. The
//! mapping from logical block address (LBA) to physical
//! cylinder/head/sector is cylinder-major: all sectors of a cylinder
//! (across every head) precede those of the next cylinder.

use serde::{Deserialize, Serialize};

/// One recording zone: a run of cylinders sharing a sectors-per-track
/// count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Zone {
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Sectors per track within the zone.
    pub sectors_per_track: u32,
}

/// A physical disk address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Chs {
    /// Cylinder number, 0 at the outer rim.
    pub cyl: u32,
    /// Head (surface) number within the cylinder.
    pub head: u32,
    /// Sector number within the track.
    pub sector: u32,
}

/// Zoned disk geometry.
///
/// # Examples
///
/// ```
/// use afraid_disk::geometry::{Geometry, Zone};
///
/// let g = Geometry::new(2, vec![
///     Zone { cylinders: 10, sectors_per_track: 100 },
///     Zone { cylinders: 10, sectors_per_track: 80 },
/// ]);
/// assert_eq!(g.capacity_sectors(), 10 * 2 * 100 + 10 * 2 * 80);
/// let chs = g.locate(0);
/// assert_eq!((chs.cyl, chs.head, chs.sector), (0, 0, 0));
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Geometry {
    heads: u32,
    zones: Vec<Zone>,
    /// First cylinder of each zone (parallel to `zones`).
    zone_first_cyl: Vec<u32>,
    /// First LBA of each zone (parallel to `zones`).
    zone_first_lba: Vec<u64>,
    capacity: u64,
    total_cylinders: u32,
}

impl Geometry {
    /// Builds a geometry from a head count and zone table.
    ///
    /// # Panics
    ///
    /// Panics if `heads` is zero, `zones` is empty, or any zone has
    /// zero cylinders or zero sectors per track.
    pub fn new(heads: u32, zones: Vec<Zone>) -> Self {
        assert!(heads > 0, "disk needs at least one head");
        assert!(!zones.is_empty(), "disk needs at least one zone");
        let mut zone_first_cyl = Vec::with_capacity(zones.len());
        let mut zone_first_lba = Vec::with_capacity(zones.len());
        let mut cyl = 0u32;
        let mut lba = 0u64;
        for z in &zones {
            assert!(z.cylinders > 0 && z.sectors_per_track > 0, "empty zone");
            zone_first_cyl.push(cyl);
            zone_first_lba.push(lba);
            cyl += z.cylinders;
            lba += u64::from(z.cylinders) * u64::from(heads) * u64::from(z.sectors_per_track);
        }
        Geometry {
            heads,
            zones,
            zone_first_cyl,
            zone_first_lba,
            capacity: lba,
            total_cylinders: cyl,
        }
    }

    /// Total addressable sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.capacity
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity * crate::SECTOR_BYTES
    }

    /// Number of heads (data surfaces).
    pub fn heads(&self) -> u32 {
        self.heads
    }

    /// Total number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.total_cylinders
    }

    /// The zone table.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Sectors per track at the given cylinder.
    ///
    /// # Panics
    ///
    /// Panics if `cyl` is out of range.
    pub fn sectors_per_track(&self, cyl: u32) -> u32 {
        self.zones[self.zone_index_of_cyl(cyl)].sectors_per_track
    }

    /// Maps an LBA to its physical address.
    ///
    /// # Panics
    ///
    /// Panics if `lba` is beyond the disk capacity.
    pub fn locate(&self, lba: u64) -> Chs {
        assert!(
            lba < self.capacity,
            "LBA {lba} beyond capacity {}",
            self.capacity
        );
        // Find the zone by LBA (zones are few; partition_point is tidy).
        let zi = self.zone_first_lba.partition_point(|&z| z <= lba) - 1;
        let zone = &self.zones[zi];
        let spt = u64::from(zone.sectors_per_track);
        let per_cyl = spt * u64::from(self.heads);
        let off = lba - self.zone_first_lba[zi];
        let cyl = self.zone_first_cyl[zi] + (off / per_cyl) as u32;
        let within = off % per_cyl;
        Chs {
            cyl,
            head: (within / spt) as u32,
            sector: (within % spt) as u32,
        }
    }

    /// Maps a physical address back to its LBA.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn lba_of(&self, chs: Chs) -> u64 {
        assert!(chs.cyl < self.total_cylinders, "cylinder out of range");
        assert!(chs.head < self.heads, "head out of range");
        let zi = self.zone_index_of_cyl(chs.cyl);
        let zone = &self.zones[zi];
        assert!(chs.sector < zone.sectors_per_track, "sector out of range");
        let spt = u64::from(zone.sectors_per_track);
        let per_cyl = spt * u64::from(self.heads);
        self.zone_first_lba[zi]
            + u64::from(chs.cyl - self.zone_first_cyl[zi]) * per_cyl
            + u64::from(chs.head) * spt
            + u64::from(chs.sector)
    }

    fn zone_index_of_cyl(&self, cyl: u32) -> usize {
        assert!(cyl < self.total_cylinders, "cylinder {cyl} out of range");
        self.zone_first_cyl.partition_point(|&c| c <= cyl) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_zone() -> Geometry {
        Geometry::new(
            4,
            vec![
                Zone {
                    cylinders: 100,
                    sectors_per_track: 120,
                },
                Zone {
                    cylinders: 200,
                    sectors_per_track: 80,
                },
            ],
        )
    }

    #[test]
    fn capacity() {
        let g = two_zone();
        assert_eq!(g.capacity_sectors(), 100 * 4 * 120 + 200 * 4 * 80);
        assert_eq!(g.capacity_bytes(), g.capacity_sectors() * 512);
        assert_eq!(g.cylinders(), 300);
        assert_eq!(g.heads(), 4);
    }

    #[test]
    fn locate_first_and_last() {
        let g = two_zone();
        assert_eq!(
            g.locate(0),
            Chs {
                cyl: 0,
                head: 0,
                sector: 0
            }
        );
        let last = g.capacity_sectors() - 1;
        let chs = g.locate(last);
        assert_eq!(
            chs,
            Chs {
                cyl: 299,
                head: 3,
                sector: 79
            }
        );
    }

    #[test]
    fn locate_zone_boundary() {
        let g = two_zone();
        let z0 = 100u64 * 4 * 120;
        let chs = g.locate(z0);
        assert_eq!(
            chs,
            Chs {
                cyl: 100,
                head: 0,
                sector: 0
            }
        );
        let chs = g.locate(z0 - 1);
        assert_eq!(
            chs,
            Chs {
                cyl: 99,
                head: 3,
                sector: 119
            }
        );
    }

    #[test]
    fn locate_head_boundaries() {
        let g = two_zone();
        // LBA 120 is the first sector of head 1, cylinder 0.
        assert_eq!(
            g.locate(120),
            Chs {
                cyl: 0,
                head: 1,
                sector: 0
            }
        );
        // One full cylinder is 480 sectors.
        assert_eq!(
            g.locate(480),
            Chs {
                cyl: 1,
                head: 0,
                sector: 0
            }
        );
    }

    #[test]
    fn roundtrip_lba_chs() {
        let g = two_zone();
        for lba in (0..g.capacity_sectors()).step_by(977) {
            assert_eq!(g.lba_of(g.locate(lba)), lba, "lba {lba}");
        }
        let last = g.capacity_sectors() - 1;
        assert_eq!(g.lba_of(g.locate(last)), last);
    }

    #[test]
    fn sectors_per_track_by_zone() {
        let g = two_zone();
        assert_eq!(g.sectors_per_track(0), 120);
        assert_eq!(g.sectors_per_track(99), 120);
        assert_eq!(g.sectors_per_track(100), 80);
        assert_eq!(g.sectors_per_track(299), 80);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn locate_out_of_range() {
        let g = two_zone();
        let _ = g.locate(g.capacity_sectors());
    }

    #[test]
    #[should_panic(expected = "cylinder out of range")]
    fn lba_of_bad_cylinder() {
        let g = two_zone();
        let _ = g.lba_of(Chs {
            cyl: 300,
            head: 0,
            sector: 0,
        });
    }

    #[test]
    #[should_panic(expected = "sector out of range")]
    fn lba_of_bad_sector() {
        let g = two_zone();
        let _ = g.lba_of(Chs {
            cyl: 150,
            head: 0,
            sector: 80,
        });
    }

    #[test]
    fn single_zone_disk() {
        let g = Geometry::new(
            1,
            vec![Zone {
                cylinders: 10,
                sectors_per_track: 10,
            }],
        );
        assert_eq!(g.capacity_sectors(), 100);
        assert_eq!(
            g.locate(55),
            Chs {
                cyl: 5,
                head: 0,
                sector: 5
            }
        );
    }
}
