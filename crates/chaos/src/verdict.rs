//! Judging one crash experiment: the invariants recovery must meet.
//!
//! Given the crash image (ground truth), the recovery outcome, and the
//! in-run loss report (units a mid-run disk failure already cost,
//! before the crash), [`judge`] enforces five invariants:
//!
//! 1. **No silent loss.** Every unit whose reconstruction is truly
//!    wrong at the cut (stale parity XOR ≠ the dead disk's real
//!    contents) must appear in recovery's declared-lost list. This is
//!    the paper's NVRAM bet: the marking memory must cover every
//!    exposed stripe.
//! 2. **Byte identity.** Every data unit *not* declared lost must be
//!    byte-identical to the pre-crash durable contents — recovery may
//!    not corrupt anything it claims to have recovered.
//! 3. **Full redundancy.** After recovery every stripe's parity is
//!    consistent and no stripe remains marked: the array leaves
//!    recovery fully protected.
//! 4. **No write hole.** Without a dead disk, every *unmarked* stripe
//!    must already be parity-consistent at the cut — the mark-then-
//!    write ordering guarantees a crash can leave spuriously dirty
//!    stripes, never silently stale clean ones. Stripes carrying a
//!    live *injected* silent corruption are exempt: a lying disk
//!    breaks the XOR identity without a mark by design, and the
//!    checksum layer (invariant 5), not the marking memory, owns
//!    those.
//! 5. **No silent corruption survives a verified read.** When the run
//!    carried the integrity subsystem: no read before the cut
//!    returned wrong bytes undetected, the checksum layer reported no
//!    false positives, and after recovery every data unit verifies
//!    against its checksum — each injected corruption was either
//!    repaired byte-exactly, declared (absorbed and ledgered), or
//!    overwritten by the client before anything could read it.
//!
//! Over-declaration (declared lost but actually reconstructable) is
//! allowed and counted: it is the price of conservative recovery after
//! an NVRAM failure, bounded by the rescan sweep, not a correctness
//! bug.

use std::collections::BTreeSet;

use afraid::faults::DataLossReport;
use afraid::recovery::{CrashImage, RecoveryOutcome};
use afraid::shadow::Reconstruction;
use afraid_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The judged result of one cut. Serialisable and bit-stable: this is
/// the cell payload the cross-run cache memoises.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CutVerdict {
    /// Requested cut point (events to process before the power cut).
    pub cut: u64,
    /// Events actually processed (less than `cut` if the run drained).
    pub events_at_cut: u64,
    /// Simulated instant of the crash.
    pub at: SimTime,
    /// Dirty stripes at the cut (after crash-time injections).
    pub marked: u64,
    /// The dead disk recovery had to route around, if any.
    pub failed_disk: Option<u32>,
    /// True when the NVRAM was untrusted at recovery.
    pub nvram_failed: bool,
    /// Units scarred (already declared lost) before the crash.
    pub scarred: u64,
    /// Marked stripes whose parity was stale and rebuilt.
    pub scrubbed: u64,
    /// Marked stripes that were already consistent (spurious marks).
    pub spurious_marks: u64,
    /// Dead-disk units reconstructed from survivors.
    pub reconstructed: u64,
    /// Units recovery declared lost.
    pub declared_lost: u64,
    /// Units whose reconstruction was truly wrong at the cut.
    pub truly_lost: u64,
    /// Conservative over-declaration: declared but reconstructable.
    pub over_declared: u64,
    /// Units lost when a disk failed mid-run (reported then, not
    /// recovery's debt).
    pub lost_at_failure: u64,
    /// Live (injected, unresolved) silent corruptions at the cut.
    pub corrupt_live_at_cut: u64,
    /// Corruptions the power-on cross-check repaired byte-exactly.
    pub corrupt_repaired: u64,
    /// Corruptions recovery detected but had to declare.
    pub corrupt_declared: u64,
    /// Reads that returned wrong bytes undetected before the cut.
    pub silent_reads: u64,
    /// All five invariants held.
    pub pass: bool,
    /// First violated invariant, when `pass` is false.
    pub failure: Option<String>,
}

/// Judges one recovered crash. See the module docs for the invariants.
pub fn judge(
    cut: u64,
    image: &CrashImage,
    outcome: &RecoveryOutcome,
    loss_at_failure: Option<&DataLossReport>,
) -> CutVerdict {
    let layout = *image.shadow.layout();
    let mut failure: Option<String> = None;

    // Corruption bookkeeping, when the run carried the integrity
    // subsystem. Live-corrupt units diverge from the client's intent
    // by injected design; recovery's disposition of them is judged by
    // invariant 5's checksum sweep, not byte identity.
    let live_corrupt: BTreeSet<(u64, u32)> = image
        .integrity
        .as_ref()
        .map(|int| {
            int.live_corrupt()
                .into_iter()
                .map(|(s, u, _)| (s, u))
                .collect()
        })
        .unwrap_or_default();
    let corrupt_declared: BTreeSet<(u64, u32)> = outcome
        .corrupt_declared
        .iter()
        .map(|l| (l.stripe, l.unit))
        .collect();

    // Ground truth: units on the dead disk whose reconstruction value
    // (XOR of survivors) differs from what the disk really held.
    let mut truly: BTreeSet<(u64, u32)> = BTreeSet::new();
    if let Some(f) = image.failed_disk {
        for stripe in 0..layout.stripes() {
            if layout.parity_disk(stripe) == f {
                continue; // parity loss is never data loss
            }
            if image.shadow.reconstruct(stripe, f) == Reconstruction::Lost {
                let unit = (0..layout.data_units())
                    .find(|&u| layout.data_disk(stripe, u) == f)
                    .expect("non-parity disk holds a data unit");
                // A dead unit whose XOR candidate checksums back to
                // the client's intent was corrupt *on the platter* and
                // healed by the reconstruction — better than what the
                // disk held, not a loss.
                if image.integrity.as_ref().is_some_and(|int| {
                    int.verify(stripe, unit, image.shadow.xor_survivors(stripe, f))
                }) {
                    continue;
                }
                truly.insert((stripe, unit));
            }
        }
    }
    let declared: BTreeSet<(u64, u32)> = outcome
        .declared_lost
        .iter()
        .map(|l| (l.stripe, l.unit))
        .collect();

    // 1. No silent loss. A unit recovery dispositioned through the
    // corruption path (detected, declared, absorbed) was reported,
    // just in the other ledger.
    if let Some(&(s, u)) = truly
        .difference(&declared)
        .find(|su| !corrupt_declared.contains(su))
    {
        failure = Some(format!(
            "silent loss: stripe {s} unit {u} is unrecoverable but was not declared lost"
        ));
    }

    // 4. No write hole: with all disks present, unmarked stripes must
    // already be consistent at the cut. Checked before the recovered-
    // state invariants so the root cause names the pre-crash defect,
    // not its downstream symptom. (With a dead disk the check is
    // subsumed by 1: an unmarked inconsistent stripe either holds its
    // data on survivors — harmless — or reconstructs wrongly, which
    // invariant 1 catches as undeclared loss.)
    if failure.is_none() && image.failed_disk.is_none() {
        if let Some(s) = (0..layout.stripes()).find(|&s| {
            !image.marks.is_marked(s)
                && !image.shadow.parity_consistent(s)
                && !image
                    .integrity
                    .as_ref()
                    .is_some_and(|int| int.stripe_corrupt(s))
        }) {
            failure = Some(format!(
                "write hole: stripe {s} is unmarked but parity-inconsistent at the cut"
            ));
        }
    }

    // 2. Byte identity outside the declared-lost and corruption-
    // touched sets. Live-corrupt units legitimately change bytes
    // during recovery (a repair restores the intent the platter never
    // held); invariant 5 checks them against the stronger ground
    // truth — the checksum of the client's last write.
    if failure.is_none() {
        let mut skip = declared.clone();
        skip.extend(corrupt_declared.iter().copied());
        skip.extend(live_corrupt.iter().copied());
        if let Some((s, u)) = outcome.shadow.data_divergence(&image.shadow, &skip) {
            failure = Some(format!(
                "corruption: recovered stripe {s} unit {u} diverges from pre-crash contents"
            ));
        }
    }

    // 3. Full redundancy after recovery.
    if failure.is_none() {
        if let Some(s) = (0..layout.stripes()).find(|&s| !outcome.shadow.parity_consistent(s)) {
            failure = Some(format!("stripe {s} left parity-inconsistent by recovery"));
        } else if outcome.marks.marked_count() != 0 {
            failure = Some(format!(
                "{} stripes left marked after recovery",
                outcome.marks.marked_count()
            ));
        }
    }

    // 5. No silent corruption survives a verified read: none before
    // the cut, no checksum false alarms, and none after recovery.
    if failure.is_none() {
        if let Some(int) = &image.integrity {
            if int.counters.silent_reads != 0 {
                failure = Some(format!(
                    "{} reads returned wrong bytes undetected before the cut",
                    int.counters.silent_reads
                ));
            } else if int.counters.false_positives != 0 {
                failure = Some(format!(
                    "{} checksum mismatches with no injected fault behind them",
                    int.counters.false_positives
                ));
            }
        }
    }
    if failure.is_none() {
        if let Some(int) = &outcome.integrity {
            if let Some((s, u)) = int.divergence(&outcome.shadow, &BTreeSet::new()) {
                failure = Some(format!(
                    "silent corruption survives recovery: stripe {s} unit {u} fails its checksum"
                ));
            }
        }
    }

    let over = declared.difference(&truly).count() as u64;
    CutVerdict {
        cut,
        events_at_cut: image.events_processed,
        at: image.at,
        marked: image.marks.marked_count(),
        failed_disk: image.failed_disk,
        nvram_failed: image.nvram_failed,
        scarred: image.scarred.len() as u64,
        scrubbed: outcome.scrubbed,
        spurious_marks: outcome.spurious_marks,
        reconstructed: outcome.reconstructed,
        declared_lost: declared.len() as u64,
        truly_lost: truly.len() as u64,
        over_declared: over,
        lost_at_failure: loss_at_failure.map_or(0, |l| l.lost_units),
        corrupt_live_at_cut: live_corrupt.len() as u64,
        corrupt_repaired: outcome.corrupt_repaired,
        corrupt_declared: corrupt_declared.len() as u64,
        silent_reads: image
            .integrity
            .as_ref()
            .map_or(0, |int| int.counters.silent_reads),
        pass: failure.is_none(),
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afraid::layout::Layout;
    use afraid::nvram::{MarkGranularity, MarkingMemory};
    use afraid::recovery::replay;
    use afraid::shadow::ShadowArray;

    fn image() -> CrashImage {
        let layout = Layout::new(5, 8192, 320);
        CrashImage {
            marks: MarkingMemory::new(layout.stripes(), MarkGranularity::STRIPE),
            shadow: ShadowArray::new(layout),
            failed_disk: None,
            scarred: Vec::new(),
            integrity: None,
            nvram_failed: false,
            at: SimTime::ZERO,
            events_processed: 0,
            rebuild_cursor: None,
            evicting: None,
        }
    }

    #[test]
    fn clean_image_passes() {
        let img = image();
        let out = replay(&img);
        let v = judge(0, &img, &out, None);
        assert!(v.pass, "{:?}", v.failure);
        assert_eq!(v.truly_lost, 0);
        assert_eq!(v.declared_lost, 0);
    }

    #[test]
    fn write_hole_is_caught() {
        let mut img = image();
        // Stale parity without a mark: the design's cardinal sin.
        img.shadow.write_data(4, 1, 0xbad);
        let out = replay(&img);
        let v = judge(0, &img, &out, None);
        assert!(!v.pass);
        assert!(v.failure.as_deref().unwrap().contains("write hole"));
    }

    #[test]
    fn silent_loss_is_caught() {
        let mut img = image();
        let layout = *img.shadow.layout();
        let f = 3u32;
        let s = (0..layout.stripes())
            .find(|&s| layout.parity_disk(s) != f)
            .unwrap();
        let u = (0..layout.data_units())
            .find(|&u| layout.data_disk(s, u) == f)
            .unwrap();
        // Stale parity over the dead unit, but no mark: recovery will
        // confidently reconstruct garbage. Judge must flag it.
        img.shadow.write_data(s, u, 0x777);
        let pd = layout.parity_disk(s);
        let stale = img.shadow.word(s, pd) ^ 0x1234;
        img.shadow.set_word(s, pd, stale);
        img.kill_disk(f);
        let out = replay(&img);
        let v = judge(0, &img, &out, None);
        assert!(!v.pass);
        assert!(v.failure.as_deref().unwrap().contains("silent loss"));
    }

    #[test]
    fn nvram_kill_is_conservative_not_silent() {
        let mut img = image();
        let layout = *img.shadow.layout();
        let f = 2u32;
        let s = (0..layout.stripes())
            .find(|&s| layout.parity_disk(s) != f)
            .unwrap();
        let u = (0..layout.data_units())
            .find(|&u| layout.data_disk(s, u) == f)
            .unwrap();
        // One genuinely stale stripe, properly marked — then the crash
        // takes both the NVRAM and the disk.
        img.shadow.write_data(s, u, 0xabc);
        img.marks.mark(s, 0, 1);
        img.kill_nvram();
        img.kill_disk(f);
        let out = replay(&img);
        let v = judge(0, &img, &out, None);
        assert!(v.pass, "{:?}", v.failure);
        assert_eq!(v.truly_lost, 1);
        assert!(v.declared_lost >= v.truly_lost);
        assert!(v.over_declared > 0, "conservative recovery over-declares");
        assert!(v.nvram_failed);
    }

    #[test]
    fn verdict_serialises_bit_stably() {
        let img = image();
        let out = replay(&img);
        let v = judge(0, &img, &out, None);
        let a = serde_json::to_string(&v).unwrap();
        let v2: CutVerdict = serde_json::from_str(&a).unwrap();
        assert_eq!(v, v2);
        assert_eq!(serde_json::to_string(&v2).unwrap(), a);
    }
}
