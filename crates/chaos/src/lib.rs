//! Deterministic chaos harness: crash/power-loss injection with
//! verified recovery.
//!
//! AFRAID's whole bet is that the NVRAM dirty-stripe bitmap plus the
//! surviving disks are sufficient to recover a crashed array without
//! losing anything the design did not already price in. This crate
//! converts that claim from prose into a machine-checked invariant:
//!
//! 1. pick a **cut point** `k` — a count of processed events;
//! 2. replay the simulation deterministically and cut the power after
//!    exactly `k` events ([`afraid::driver::run_to_cut`]);
//! 3. optionally let the crash take a disk and/or the NVRAM with it
//!    ([`afraid::recovery::CrashImage::kill_disk`] /
//!    [`CrashImage::kill_nvram`](afraid::recovery::CrashImage::kill_nvram));
//! 4. run the power-on recovery state machine
//!    ([`afraid::recovery::replay`]), which sees only what a real
//!    controller would: the marking memory and the surviving disks;
//! 5. **byte-check** the recovered array against the shadow model's
//!    ground truth and judge the cut ([`verdict::judge`]).
//!
//! A cut index is just another cell coordinate, so sweeps over
//! thousands of cuts fan out through [`afraid_exp::map_parallel`]
//! (bit-identical at any `--jobs`) and memoise through
//! [`afraid_exp::CellCache`] (warm sweeps replay from disk).
//!
//! The scenarios ([`scenario::Scenario`]) aim the cuts at the states
//! the paper's failure-mode table worries about: mid-scrub, mid-
//! rebuild, mid-eviction-drain, and crashes that destroy the NVRAM
//! and a disk together.

pub mod scenario;
pub mod sweep;
pub mod verdict;

pub use scenario::{ChaosSpec, Scenario};
pub use sweep::{cut_points, summarize, sweep, SweepSummary, CHAOS_SCHEMA};
pub use verdict::{judge, CutVerdict};
