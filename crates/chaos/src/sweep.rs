//! Cut-point sweeps: fan thousands of crash experiments across cores.
//!
//! The cut index is an ordinary cell coordinate: each cut replays the
//! simulation deterministically from event 0, so verdicts are pure
//! functions of `(scenario, seed, duration, cut)` — bit-identical at
//! any `--jobs` count, and memoisable in the cross-run cell cache.

use afraid_exp::{map_parallel, CacheKey, CellCache};
use afraid_trace::record::Trace;
use serde::{Deserialize, Serialize};

use crate::scenario::ChaosSpec;
use crate::verdict::CutVerdict;

/// Cache schema tag for chaos cut cells. Bump when the verdict shape
/// or the recovery semantics change.
/// v2: silent-corruption injection, the power-on checksum cross-check,
/// and the corruption fields in [`CutVerdict`].
pub const CHAOS_SCHEMA: &str = "afraid-chaos-cut-v2";

/// `n` cut points spread evenly over `[1, total_events]`, deduplicated
/// and sorted. Cut 0 (crash before any event) is always included: the
/// degenerate bound belongs in every sweep.
pub fn cut_points(total_events: u64, n: usize) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let mut cuts = Vec::with_capacity(n + 1);
    cuts.push(0);
    if n == 1 || total_events == 0 {
        cuts.push(total_events);
    } else {
        let span = total_events - 1;
        for i in 0..n {
            cuts.push(1 + span * i as u64 / (n as u64 - 1));
        }
    }
    cuts.dedup();
    cuts
}

/// The cache key of one cut cell: every coordinate that can change the
/// verdict, plus the scenario's full config encoding so a config tweak
/// orphans stale entries.
pub fn cut_key(cache: &CellCache, spec: &ChaosSpec, trace: &Trace, cut: u64) -> CacheKey {
    cache
        .key_builder()
        .str("chaos-cut")
        .str(spec.scenario.name())
        .str(&spec.cfg.cache_encoding())
        .str(&format!("{:?}", spec.opts))
        .str(&trace.name)
        .f64(spec.duration.as_secs_f64())
        .u64(spec.seed)
        .u64(spec.kill_disk_at_cut.map_or(u64::MAX, u64::from))
        .u64(u64::from(spec.kill_nvram_at_cut))
        .u64(cut)
        .finish()
}

/// Runs (or replays from cache) the verdicts for every cut, in input
/// order, `jobs`-parallel.
pub fn sweep(
    spec: &ChaosSpec,
    trace: &Trace,
    cuts: &[u64],
    jobs: usize,
    cache: Option<&CellCache>,
) -> Vec<CutVerdict> {
    map_parallel(jobs, cuts, |_, &cut| match cache {
        Some(c) => c.run_cached(&cut_key(c, spec, trace, cut), || spec.run_cut(trace, cut)),
        None => spec.run_cut(trace, cut),
    })
}

/// Aggregate of one scenario's sweep, for reports and CI gates.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Scenario name.
    pub scenario: String,
    /// Cut points judged.
    pub cuts: u64,
    /// Cuts where all five invariants held.
    pub passed: u64,
    /// Cuts with a violated invariant (first failure quoted).
    pub failed: u64,
    /// First failure message, if any cut failed.
    pub first_failure: Option<String>,
    /// Cuts that declared at least one unit lost.
    pub cuts_with_declared_loss: u64,
    /// Cuts with at least one truly unrecoverable unit.
    pub cuts_with_true_loss: u64,
    /// Total units declared lost across all cuts.
    pub declared_lost_units: u64,
    /// Total truly lost units across all cuts.
    pub truly_lost_units: u64,
    /// Total stale-parity stripes rebuilt across all cuts.
    pub scrubbed: u64,
    /// Total spurious marks (crash between mark and write).
    pub spurious_marks: u64,
    /// Total dead-disk units reconstructed from survivors.
    pub reconstructed: u64,
    /// Cuts caught with at least one undispositioned corruption live
    /// in the registry.
    pub cuts_with_live_corruption: u64,
    /// Total corruptions repaired byte-exactly by the power-on
    /// cross-check, across all cuts.
    pub corrupt_repaired: u64,
    /// Total corruptions the power-on cross-check declared lost.
    pub corrupt_declared: u64,
    /// Total silent reads (corrupt data served without detection)
    /// before the cut. Zero whenever verify-on-read is enabled.
    pub silent_reads: u64,
}

/// Folds a sweep's verdicts into a summary row.
pub fn summarize(scenario: &str, verdicts: &[CutVerdict]) -> SweepSummary {
    let mut s = SweepSummary {
        scenario: scenario.to_string(),
        cuts: verdicts.len() as u64,
        passed: 0,
        failed: 0,
        first_failure: None,
        cuts_with_declared_loss: 0,
        cuts_with_true_loss: 0,
        declared_lost_units: 0,
        truly_lost_units: 0,
        scrubbed: 0,
        spurious_marks: 0,
        reconstructed: 0,
        cuts_with_live_corruption: 0,
        corrupt_repaired: 0,
        corrupt_declared: 0,
        silent_reads: 0,
    };
    for v in verdicts {
        if v.pass {
            s.passed += 1;
        } else {
            s.failed += 1;
            if s.first_failure.is_none() {
                s.first_failure = v.failure.clone();
            }
        }
        if v.declared_lost > 0 {
            s.cuts_with_declared_loss += 1;
        }
        if v.truly_lost > 0 {
            s.cuts_with_true_loss += 1;
        }
        s.declared_lost_units += v.declared_lost;
        s.truly_lost_units += v.truly_lost;
        s.scrubbed += v.scrubbed;
        s.spurious_marks += v.spurious_marks;
        s.reconstructed += v.reconstructed;
        if v.corrupt_live_at_cut > 0 {
            s.cuts_with_live_corruption += 1;
        }
        s.corrupt_repaired += v.corrupt_repaired;
        s.corrupt_declared += v.corrupt_declared;
        s.silent_reads += v.silent_reads;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_points_cover_both_ends() {
        let cuts = cut_points(1000, 10);
        assert_eq!(cuts[0], 0);
        assert_eq!(cuts[1], 1);
        assert_eq!(*cuts.last().unwrap(), 1000);
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "{cuts:?}");
    }

    #[test]
    fn cut_points_degenerate() {
        assert!(cut_points(1000, 0).is_empty());
        assert_eq!(cut_points(0, 4), vec![0]);
        assert_eq!(cut_points(5, 1), vec![0, 5]);
        // More requested cuts than events: dedup keeps each once.
        let cuts = cut_points(3, 100);
        assert!(cuts.len() <= 5, "{cuts:?}");
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
    }
}
