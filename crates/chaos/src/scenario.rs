//! Crash scenarios: which machinery is mid-flight when the power dies.
//!
//! Every scenario is a fully deterministic run specification — array
//! config, trace recipe, in-run fault injections, and crash-time
//! injections — so a `(scenario, seed, duration, cut)` tuple names one
//! reproducible crash experiment.

use afraid::config::ArrayConfig;
use afraid::driver::{run_to_cut, run_trace, RunOptions};
use afraid::policy::ParityPolicy;
use afraid::recovery::replay;
use afraid_sim::time::{SimDuration, SimTime};
use afraid_trace::record::{IoRecord, ReqKind, Trace};
use afraid_trace::workloads::{WorkloadKind, WorkloadSpec};

use crate::verdict::{judge, CutVerdict};

/// Full logical capacity of the `small_test` array: 2500 stripes of
/// 4 × 8 KB data units. Chaos traces address all of it so cut points
/// land on every stripe-geometry case.
pub const CHAOS_CAPACITY: u64 = 2500 * 4 * 8192;

/// A named crash scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// Plain power loss under a bursty single-user workload: cuts land
    /// between marks, data writes, and idle-time scrubs.
    Baseline,
    /// Power loss while the parity scrubber is repairing aggressively:
    /// small batches, short idle delay, a write-heavy trace.
    ScrubRepair,
    /// Power loss while a dead disk's contents are being rebuilt onto
    /// a spare (and during the preceding degraded window).
    Rebuild,
    /// Power loss while the health scoreboard drains a fail-slow disk
    /// toward lossless eviction (and during the post-eviction rebuild).
    EvictionDrain,
    /// The crash destroys the NVRAM *and* one disk: recovery must
    /// conservatively declare every suspect unit rather than silently
    /// pass the truly-stale ones.
    NvramLoss,
    /// Power loss while disks are *lying*: torn, lost, and misdirected
    /// writes plus read bit-flips, with verify-on-read and checksum
    /// scrubs hunting them. Cuts land with live rot in every stage of
    /// disposition; recovery's power-on cross-check must finish the
    /// job (invariant 5).
    Corruption,
}

impl Scenario {
    /// Every scenario, in reporting order.
    pub const ALL: [Scenario; 6] = [
        Scenario::Baseline,
        Scenario::ScrubRepair,
        Scenario::Rebuild,
        Scenario::EvictionDrain,
        Scenario::NvramLoss,
        Scenario::Corruption,
    ];

    /// Stable name used in CLI flags, cache keys, and reports.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Baseline => "baseline",
            Scenario::ScrubRepair => "scrub",
            Scenario::Rebuild => "rebuild",
            Scenario::EvictionDrain => "evict",
            Scenario::NvramLoss => "nvram",
            Scenario::Corruption => "corrupt",
        }
    }

    /// Parses a scenario name as given to `--scenario`.
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// Builds the deterministic run specification for this scenario.
    pub fn spec(self, duration: SimDuration, seed: u64) -> ChaosSpec {
        let mut cfg = ArrayConfig::small_test(ParityPolicy::IdleOnly);
        let mut opts = RunOptions::default();
        let mut kill_disk_at_cut = None;
        let mut kill_nvram_at_cut = false;
        let half = SimTime::ZERO + SimDuration::from_secs_f64(duration.as_secs_f64() * 0.5);
        match self {
            Scenario::Baseline => {}
            Scenario::ScrubRepair => {
                // Keep the scrubber busy: small batches, eager idle
                // detection, so many cuts land inside a repair batch.
                cfg.scrub_batch = 4;
                cfg.idle_delay = SimDuration::from_millis(20);
            }
            Scenario::Rebuild => {
                // Disk 2 dies at mid-run; a spare arrives shortly
                // after, so cuts cover the degraded window, the
                // rebuild sweep, and the restored tail.
                opts.fail_disk = Some((2, half));
                opts.continue_degraded = true;
                opts.spare_delay = Some(SimDuration::from_millis(200));
            }
            Scenario::EvictionDrain => {
                // Disk 2 limps hard enough to trip the scoreboard; the
                // drain, the eviction, and the post-eviction rebuild
                // are all in the cut window.
                cfg.faults.fail_slow = Some(afraid::config::FailSlowConfig {
                    disk: 2,
                    start: SimTime::ZERO + SimDuration::from_secs_f64(duration.as_secs_f64() * 0.2),
                    duration: SimDuration::from_secs(600),
                    factor: 40.0,
                });
                cfg.faults.io_timeout = SimDuration::from_millis(100);
                cfg.faults.evict_threshold = 0.5;
                cfg.faults.health_alpha = 0.4;
                cfg.faults.evict_spare_delay = SimDuration::from_millis(500);
            }
            Scenario::NvramLoss => {
                // Crash-time injection: the cut itself takes the NVRAM
                // and disk 2. Every dirty stripe with data on disk 2
                // at the cut is truly unrecoverable — recovery must
                // say so, not silently reconstruct garbage.
                kill_disk_at_cut = Some(2);
                kill_nvram_at_cut = true;
            }
            Scenario::Corruption => {
                // Silent-fault rates high enough that most cuts land
                // with live rot mid-disposition somewhere, under a
                // write-heavy trace; eager scrubbing keeps both the
                // verify-on-read and checksum-scrub paths hot. Cuts
                // are plain power losses — the interesting crash state
                // is the corruption registry itself.
                cfg.integrity.bit_flip_per_read = 5e-3;
                cfg.integrity.torn_write_per_io = 3e-2;
                cfg.integrity.lost_write_per_io = 3e-2;
                cfg.integrity.misdirected_write_per_io = 2e-2;
                cfg.integrity.verify_reads = true;
                cfg.integrity.verify_scrub = true;
                cfg.scrub.enabled = true;
                cfg.scrub_batch = 4;
                cfg.idle_delay = SimDuration::from_millis(20);
            }
        }
        ChaosSpec {
            scenario: self,
            cfg,
            opts,
            duration,
            seed,
            kill_disk_at_cut,
            kill_nvram_at_cut,
        }
    }
}

/// One reproducible crash experiment family: everything but the cut
/// point.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// The scenario this spec was built from.
    pub scenario: Scenario,
    /// Array configuration (always shadow-enabled).
    pub cfg: ArrayConfig,
    /// In-run fault injections.
    pub opts: RunOptions,
    /// Simulated trace duration.
    pub duration: SimDuration,
    /// Workload seed.
    pub seed: u64,
    /// Crash-time injection: the cut also kills this disk.
    pub kill_disk_at_cut: Option<u32>,
    /// Crash-time injection: the cut also destroys the NVRAM.
    pub kill_nvram_at_cut: bool,
}

impl ChaosSpec {
    /// Generates the scenario's trace. Deterministic in
    /// `(scenario, duration, seed)`.
    pub fn trace(&self) -> Trace {
        match self.scenario {
            // The bursty single-user trace for the plain power-loss
            // scenarios: cuts land inside bursts (dirty stripes) and
            // inside idle gaps (scrubbed, quiescent).
            Scenario::Baseline | Scenario::NvramLoss => WorkloadSpec::preset(WorkloadKind::Hplajw)
                .generate(CHAOS_CAPACITY, self.duration, self.seed),
            // The denser write-heavy trace where the crash interacts
            // with background machinery: scrub batches, the degraded/
            // rebuild window, and silent-fault injection (a per-write
            // draw) all need steady traffic.
            Scenario::ScrubRepair | Scenario::Rebuild | Scenario::Corruption => {
                WorkloadSpec::preset(WorkloadKind::Att).generate(
                    CHAOS_CAPACITY,
                    self.duration,
                    self.seed,
                )
            }
            // The eviction drain needs a steady request stream so the
            // limping disk keeps timing out: a fixed-cadence synthetic
            // trace, write-heavy, striding across the address space.
            Scenario::EvictionDrain => {
                let mut trace = Trace::new("chaos-evict", CHAOS_CAPACITY);
                let period_ms = 75u64;
                let n = (self.duration.as_secs_f64() * 1000.0 / period_ms as f64) as u64;
                for i in 0..n {
                    trace.push(IoRecord {
                        time: SimTime::from_millis(i * period_ms),
                        offset: ((i.wrapping_mul(16).wrapping_add(self.seed)) % 9_000) * 8192,
                        bytes: 2 * 8192,
                        kind: if i % 3 == 0 {
                            ReqKind::Read
                        } else {
                            ReqKind::Write
                        },
                    });
                }
                trace
            }
        }
    }

    /// Total events a full (uncut) run of this spec processes — the
    /// upper end of the cut-point range.
    pub fn total_events(&self, trace: &Trace) -> u64 {
        run_trace(&self.cfg, trace, &self.opts)
            .metrics
            .events_processed
    }

    /// Runs one crash experiment: replay to the cut, apply the
    /// crash-time injections, recover, and judge.
    pub fn run_cut(&self, trace: &Trace, cut: u64) -> CutVerdict {
        let mut run = run_to_cut(&self.cfg, trace, &self.opts, cut);
        if let Some(disk) = self.kill_disk_at_cut {
            // If an in-run failure already left a disk dead, the
            // crash-time kill would be a second failure — array loss,
            // outside the recovery model — so it only applies while
            // the array is whole.
            if run.image.failed_disk.is_none() {
                run.image.kill_disk(disk);
            }
        }
        if self.kill_nvram_at_cut {
            run.image.kill_nvram();
        }
        let outcome = replay(&run.image);
        judge(cut, &run.image, &outcome, run.loss.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::parse("bogus"), None);
    }

    #[test]
    fn specs_are_shadowed_and_valid() {
        for sc in Scenario::ALL {
            let spec = sc.spec(SimDuration::from_secs(1), 42);
            assert!(spec.cfg.shadow, "{}: chaos needs ground truth", sc.name());
            assert!(spec.cfg.validate().is_ok(), "{}", sc.name());
            let trace = spec.trace();
            assert!(!trace.records.is_empty(), "{}", sc.name());
            assert!(trace.capacity <= CHAOS_CAPACITY);
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let spec = Scenario::EvictionDrain.spec(SimDuration::from_secs(1), 7);
        let a = spec.trace();
        let b = spec.trace();
        assert_eq!(a.records, b.records);
    }
}
