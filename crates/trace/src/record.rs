//! Trace records and containers.

use afraid_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Read or write, from the host's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReqKind {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// One host I/O request against the array's logical address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRecord {
    /// Arrival time (open queueing: arrivals do not depend on service).
    pub time: SimTime,
    /// Byte offset into the array's logical space; sector-aligned.
    pub offset: u64,
    /// Length in bytes; a positive multiple of the sector size.
    pub bytes: u64,
    /// Read or write.
    pub kind: ReqKind,
}

/// An ordered sequence of I/O requests plus identifying metadata.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name, e.g. `"cello-news"`.
    pub name: String,
    /// Logical capacity the offsets were generated against (bytes).
    pub capacity: u64,
    /// Requests in non-decreasing time order.
    pub records: Vec<IoRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        Trace {
            name: name.into(),
            capacity,
            records: Vec::new(),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Time of the last request (zero for an empty trace).
    pub fn end_time(&self) -> SimTime {
        self.records.last().map_or(SimTime::ZERO, |r| r.time)
    }

    /// Span from first to last request.
    pub fn span(&self) -> SimDuration {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => b.time.since(a.time),
            _ => SimDuration::ZERO,
        }
    }

    /// Appends a record, enforcing time order and alignment.
    ///
    /// # Panics
    ///
    /// Panics if the record is out of time order, unaligned, empty, or
    /// extends beyond the capacity.
    pub fn push(&mut self, rec: IoRecord) {
        assert!(
            self.records.last().is_none_or(|l| l.time <= rec.time),
            "records must be time-ordered"
        );
        assert!(
            rec.bytes > 0 && rec.bytes.is_multiple_of(512),
            "unaligned length {}",
            rec.bytes
        );
        assert!(
            rec.offset.is_multiple_of(512),
            "unaligned offset {}",
            rec.offset
        );
        assert!(
            rec.offset + rec.bytes <= self.capacity,
            "record [{}, {}) beyond capacity {}",
            rec.offset,
            rec.offset + rec.bytes,
            self.capacity
        );
        self.records.push(rec);
    }

    /// Fraction of requests that are writes (0 for an empty trace).
    pub fn write_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let writes = self
            .records
            .iter()
            .filter(|r| r.kind == ReqKind::Write)
            .count();
        writes as f64 / self.records.len() as f64
    }

    /// Total bytes transferred.
    pub fn total_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.bytes).sum()
    }

    /// Returns a copy truncated to requests arriving before `cutoff`.
    /// Used to run shortened experiments from one generated trace.
    pub fn truncated(&self, cutoff: SimTime) -> Trace {
        Trace {
            name: self.name.clone(),
            capacity: self.capacity,
            records: self
                .records
                .iter()
                .copied()
                .take_while(|r| r.time < cutoff)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ms: u64, offset: u64, bytes: u64, kind: ReqKind) -> IoRecord {
        IoRecord {
            time: SimTime::from_millis(ms),
            offset,
            bytes,
            kind,
        }
    }

    #[test]
    fn push_and_query() {
        let mut t = Trace::new("t", 1 << 20);
        t.push(rec(1, 0, 512, ReqKind::Read));
        t.push(rec(2, 512, 1024, ReqKind::Write));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.end_time(), SimTime::from_millis(2));
        assert_eq!(t.span(), SimDuration::from_millis(1));
        assert_eq!(t.write_fraction(), 0.5);
        assert_eq!(t.total_bytes(), 1536);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new("e", 1024);
        assert!(t.is_empty());
        assert_eq!(t.end_time(), SimTime::ZERO);
        assert_eq!(t.span(), SimDuration::ZERO);
        assert_eq!(t.write_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_time_regression() {
        let mut t = Trace::new("t", 1 << 20);
        t.push(rec(2, 0, 512, ReqKind::Read));
        t.push(rec(1, 0, 512, ReqKind::Read));
    }

    #[test]
    fn equal_times_allowed() {
        let mut t = Trace::new("t", 1 << 20);
        t.push(rec(1, 0, 512, ReqKind::Read));
        t.push(rec(1, 512, 512, ReqKind::Read));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned length")]
    fn rejects_unaligned_length() {
        let mut t = Trace::new("t", 1 << 20);
        t.push(rec(1, 0, 100, ReqKind::Read));
    }

    #[test]
    #[should_panic(expected = "unaligned offset")]
    fn rejects_unaligned_offset() {
        let mut t = Trace::new("t", 1 << 20);
        t.push(rec(1, 7, 512, ReqKind::Read));
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn rejects_overflow() {
        let mut t = Trace::new("t", 1024);
        t.push(rec(1, 512, 1024, ReqKind::Read));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let mut t = Trace::new("t", 1 << 20);
        for ms in 1..=10 {
            t.push(rec(ms, 0, 512, ReqKind::Read));
        }
        let cut = t.truncated(SimTime::from_millis(5));
        assert_eq!(cut.len(), 4);
        assert_eq!(cut.name, "t");
        assert_eq!(cut.capacity, t.capacity);
    }
}
