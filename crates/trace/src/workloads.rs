//! The nine workload presets standing in for the paper's traces.
//!
//! The original traces are proprietary; these presets are synthesised
//! from the published characterisations (the paper's §4.1 and
//! \[Ruemmler93\]). The parameters encode the *relative* properties the
//! evaluation depends on — which traces are bursty, which are
//! write-heavy, which run the array near saturation:
//!
//! | trace | character | load |
//! |---|---|---|
//! | hplajw | single user, email/editing | very light, very bursty |
//! | snake | workstation-cluster file server | light, bursty |
//! | cello-usr | timesharing root//usr//users | light, bursty |
//! | cello-news | Usenet news database | moderate, write-heavy |
//! | netware | database-loading benchmark | heavy, sequential writes |
//! | att | production telephone DB | heaviest, random writes |
//! | as400-1 | production AS/400 | moderately heavy |
//! | as400-2..4 | production AS/400 | light–moderate |
//!
//! Absolute numbers are not claimed to match the original traces; the
//! reproduction's claim is that the *shape* of Figures 2–4 follows from
//! this qualitative structure.

use afraid_sim::dist::{Empirical, Exponential, Hyperexponential};
use afraid_sim::rng::SplitMix64;
use afraid_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::gen::onoff::OnOffGenerator;
use crate::gen::spatial::SpatialModel;
use crate::record::Trace;

/// Identifier for one of the nine paper workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Single-user HP-UX system (email, document editing).
    Hplajw,
    /// HP-UX file server for a workstation cluster at UC Berkeley.
    Snake,
    /// Timesharing system: root, `/usr`, `/users` disks.
    CelloUsr,
    /// The cello Usenet news database disk.
    CelloNews,
    /// Intensive database-loading benchmark on a Novell NetWare server.
    Netware,
    /// Production telephone-company database system.
    Att,
    /// Production IBM AS/400 system 1 (the busiest of the four).
    As400_1,
    /// Production IBM AS/400 system 2.
    As400_2,
    /// Production IBM AS/400 system 3.
    As400_3,
    /// Production IBM AS/400 system 4.
    As400_4,
}

impl WorkloadKind {
    /// All nine workloads, in the paper's order.
    pub fn all() -> [WorkloadKind; 10] {
        [
            WorkloadKind::Hplajw,
            WorkloadKind::Snake,
            WorkloadKind::CelloUsr,
            WorkloadKind::CelloNews,
            WorkloadKind::Netware,
            WorkloadKind::Att,
            WorkloadKind::As400_1,
            WorkloadKind::As400_2,
            WorkloadKind::As400_3,
            WorkloadKind::As400_4,
        ]
    }

    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Hplajw => "hplajw",
            WorkloadKind::Snake => "snake",
            WorkloadKind::CelloUsr => "cello-usr",
            WorkloadKind::CelloNews => "cello-news",
            WorkloadKind::Netware => "netware",
            WorkloadKind::Att => "att",
            WorkloadKind::As400_1 => "as400-1",
            WorkloadKind::As400_2 => "as400-2",
            WorkloadKind::As400_3 => "as400-3",
            WorkloadKind::As400_4 => "as400-4",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(s: &str) -> Option<WorkloadKind> {
        WorkloadKind::all().into_iter().find(|k| k.name() == s)
    }
}

/// Full parameter set for one synthetic workload.
///
/// # Examples
///
/// ```
/// use afraid_sim::time::SimDuration;
/// use afraid_trace::workloads::{WorkloadKind, WorkloadSpec};
///
/// let spec = WorkloadSpec::preset(WorkloadKind::Snake);
/// let trace = spec.generate(1 << 30, SimDuration::from_secs(30), 42);
/// assert!(!trace.is_empty());
/// // Deterministic: the same seed regenerates the same trace.
/// let again = spec.generate(1 << 30, SimDuration::from_secs(30), 42);
/// assert_eq!(trace.records, again.records);
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Canonical name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Mean requests per burst.
    pub burst_len_mean: f64,
    /// Mean intra-burst inter-arrival gap (ms).
    pub intra_gap_ms: f64,
    /// Probability an idle gap comes from the short phase.
    pub idle_short_p: f64,
    /// Mean of the short idle-gap phase (ms).
    pub idle_short_ms: f64,
    /// Mean of the long idle-gap phase (ms).
    pub idle_long_ms: f64,
    /// Fraction of requests that are writes.
    pub write_prob: f64,
    /// Request sizes in bytes with weights.
    pub sizes: &'static [(f64, f64)],
    /// Fraction of the array capacity the workload touches.
    pub footprint_frac: f64,
    /// Probability a request continues the previous sequential run.
    pub seq_prob: f64,
    /// Number of hot-region slices.
    pub regions: usize,
    /// Zipf skew across regions.
    pub zipf_s: f64,
}

impl WorkloadSpec {
    /// The preset for a given workload.
    pub fn preset(kind: WorkloadKind) -> WorkloadSpec {
        match kind {
            WorkloadKind::Hplajw => WorkloadSpec {
                name: "hplajw",
                description: "single-user HP-UX: email and document editing",
                burst_len_mean: 6.0,
                intra_gap_ms: 15.0,
                idle_short_p: 0.75,
                idle_short_ms: 300.0,
                idle_long_ms: 20_000.0,
                write_prob: 0.55,
                sizes: &[(4096.0, 0.55), (8192.0, 0.35), (16384.0, 0.10)],
                footprint_frac: 0.30,
                seq_prob: 0.30,
                regions: 16,
                zipf_s: 1.1,
            },
            WorkloadKind::Snake => WorkloadSpec {
                name: "snake",
                description: "HP-UX file server for a workstation cluster",
                burst_len_mean: 12.0,
                intra_gap_ms: 8.0,
                idle_short_p: 0.85,
                idle_short_ms: 150.0,
                idle_long_ms: 8_000.0,
                write_prob: 0.45,
                sizes: &[
                    (4096.0, 0.40),
                    (8192.0, 0.40),
                    (16384.0, 0.12),
                    (65536.0, 0.08),
                ],
                footprint_frac: 0.45,
                seq_prob: 0.40,
                regions: 16,
                zipf_s: 1.0,
            },
            WorkloadKind::CelloUsr => WorkloadSpec {
                name: "cello-usr",
                description: "timesharing system: root, /usr and /users disks",
                burst_len_mean: 10.0,
                intra_gap_ms: 10.0,
                idle_short_p: 0.80,
                idle_short_ms: 200.0,
                idle_long_ms: 10_000.0,
                write_prob: 0.50,
                sizes: &[(4096.0, 0.50), (8192.0, 0.40), (16384.0, 0.10)],
                footprint_frac: 0.40,
                seq_prob: 0.30,
                regions: 16,
                zipf_s: 1.1,
            },
            WorkloadKind::CelloNews => WorkloadSpec {
                name: "cello-news",
                description: "Usenet news database: half of all cello I/Os, write-heavy",
                burst_len_mean: 15.0,
                intra_gap_ms: 11.0,
                idle_short_p: 0.88,
                idle_short_ms: 150.0,
                idle_long_ms: 3_000.0,
                write_prob: 0.75,
                sizes: &[(4096.0, 0.45), (8192.0, 0.40), (16384.0, 0.15)],
                footprint_frac: 0.50,
                seq_prob: 0.35,
                regions: 12,
                zipf_s: 1.2,
            },
            WorkloadKind::Netware => WorkloadSpec {
                name: "netware",
                description: "intensive database-loading benchmark on NetWare",
                burst_len_mean: 30.0,
                intra_gap_ms: 25.0,
                idle_short_p: 0.88,
                idle_short_ms: 300.0,
                idle_long_ms: 4_000.0,
                write_prob: 0.85,
                sizes: &[(8192.0, 0.20), (16384.0, 0.30), (65536.0, 0.50)],
                footprint_frac: 0.70,
                seq_prob: 0.70,
                regions: 8,
                zipf_s: 0.8,
            },
            WorkloadKind::Att => WorkloadSpec {
                name: "att",
                description: "production telephone-company database (busiest trace)",
                burst_len_mean: 30.0,
                intra_gap_ms: 11.0,
                idle_short_p: 0.92,
                idle_short_ms: 250.0,
                idle_long_ms: 2_500.0,
                write_prob: 0.60,
                sizes: &[(4096.0, 0.60), (8192.0, 0.40)],
                footprint_frac: 0.60,
                seq_prob: 0.10,
                regions: 24,
                zipf_s: 1.0,
            },
            WorkloadKind::As400_1 => WorkloadSpec {
                name: "as400-1",
                description: "production IBM AS/400, system 1 (busiest of the four)",
                burst_len_mean: 20.0,
                intra_gap_ms: 9.0,
                idle_short_p: 0.88,
                idle_short_ms: 250.0,
                idle_long_ms: 3_000.0,
                write_prob: 0.55,
                sizes: &[(4096.0, 0.50), (8192.0, 0.35), (16384.0, 0.15)],
                footprint_frac: 0.55,
                seq_prob: 0.20,
                regions: 16,
                zipf_s: 1.0,
            },
            WorkloadKind::As400_2 => WorkloadSpec {
                name: "as400-2",
                description: "production IBM AS/400, system 2",
                burst_len_mean: 20.0,
                intra_gap_ms: 10.0,
                idle_short_p: 0.85,
                idle_short_ms: 200.0,
                idle_long_ms: 4_000.0,
                write_prob: 0.50,
                sizes: &[(4096.0, 0.50), (8192.0, 0.35), (16384.0, 0.15)],
                footprint_frac: 0.50,
                seq_prob: 0.25,
                regions: 16,
                zipf_s: 1.0,
            },
            WorkloadKind::As400_3 => WorkloadSpec {
                name: "as400-3",
                description: "production IBM AS/400, system 3",
                burst_len_mean: 15.0,
                intra_gap_ms: 10.0,
                idle_short_p: 0.82,
                idle_short_ms: 250.0,
                idle_long_ms: 6_000.0,
                write_prob: 0.45,
                sizes: &[(4096.0, 0.55), (8192.0, 0.35), (16384.0, 0.10)],
                footprint_frac: 0.45,
                seq_prob: 0.25,
                regions: 16,
                zipf_s: 1.0,
            },
            WorkloadKind::As400_4 => WorkloadSpec {
                name: "as400-4",
                description: "production IBM AS/400, system 4 (lightest of the four)",
                burst_len_mean: 10.0,
                intra_gap_ms: 12.0,
                idle_short_p: 0.80,
                idle_short_ms: 300.0,
                idle_long_ms: 8_000.0,
                write_prob: 0.40,
                sizes: &[(4096.0, 0.55), (8192.0, 0.35), (16384.0, 0.10)],
                footprint_frac: 0.40,
                seq_prob: 0.25,
                regions: 16,
                zipf_s: 1.0,
            },
        }
    }

    /// Estimated long-run request rate (requests per second), from the
    /// renewal structure: one burst of `burst_len_mean` requests per
    /// `burst duration + mean idle gap`.
    pub fn offered_ios_per_sec(&self) -> f64 {
        let burst_secs = (self.burst_len_mean - 1.0).max(0.0) * self.intra_gap_ms / 1e3;
        let idle_secs = (self.idle_short_p * self.idle_short_ms
            + (1.0 - self.idle_short_p) * self.idle_long_ms)
            / 1e3;
        self.burst_len_mean / (burst_secs + idle_secs)
    }

    /// Mean request size in bytes.
    pub fn mean_request_bytes(&self) -> f64 {
        let total: f64 = self.sizes.iter().map(|&(_, w)| w).sum();
        self.sizes.iter().map(|&(v, w)| v * w).sum::<f64>() / total
    }

    /// Estimated long-run data rate (bytes per second).
    pub fn offered_bytes_per_sec(&self) -> f64 {
        self.offered_ios_per_sec() * self.mean_request_bytes()
    }

    /// Generates a trace against `capacity` bytes lasting `duration`.
    pub fn generate(&self, capacity: u64, duration: SimDuration, seed: u64) -> Trace {
        let mut rng = SplitMix64::new(seed ^ fxhash(self.name));
        let spatial = SpatialModel::new(
            capacity,
            self.footprint_frac,
            self.seq_prob,
            self.regions,
            self.zipf_s,
        );
        let gen = OnOffGenerator {
            burst_len_mean: self.burst_len_mean,
            intra_gap: Exponential::with_mean(self.intra_gap_ms),
            idle_gap: Hyperexponential::new(
                self.idle_short_p,
                self.idle_short_ms,
                self.idle_long_ms,
            ),
            write_prob: self.write_prob,
            size_dist: Empirical::new(self.sizes),
        };
        gen.generate(self.name, capacity, duration, spatial, &mut rng)
    }
}

/// Small stable string hash so each workload gets an independent RNG
/// substream from the same user seed.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 8 * 1024 * 1024 * 1024; // 8 GB array

    #[test]
    fn all_presets_generate() {
        for kind in WorkloadKind::all() {
            let spec = WorkloadSpec::preset(kind);
            let t = spec.generate(CAP, SimDuration::from_secs(60), 1);
            assert!(!t.is_empty(), "{} produced no traffic", spec.name);
            assert_eq!(t.name, kind.name());
        }
    }

    #[test]
    fn names_roundtrip() {
        for kind in WorkloadKind::all() {
            assert_eq!(WorkloadKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }

    #[test]
    fn load_ordering_matches_paper() {
        // The paper's qualitative ordering: hplajw/snake/cello-usr are
        // bursty and light; att, cello-news, netware and as400-1 run
        // the array hardest (att in IOPS, netware in bytes).
        let rate = |k| WorkloadSpec::preset(k).offered_ios_per_sec();
        let bytes = |k| WorkloadSpec::preset(k).offered_bytes_per_sec();
        for heavy in [
            WorkloadKind::Att,
            WorkloadKind::CelloNews,
            WorkloadKind::Netware,
            WorkloadKind::As400_1,
        ] {
            for light in [
                WorkloadKind::Hplajw,
                WorkloadKind::Snake,
                WorkloadKind::CelloUsr,
            ] {
                assert!(
                    rate(heavy) > rate(light),
                    "{heavy:?} not heavier than {light:?}"
                );
            }
        }
        assert!(rate(WorkloadKind::Att) > rate(WorkloadKind::CelloNews));
        assert!(bytes(WorkloadKind::Netware) > bytes(WorkloadKind::CelloNews));
        assert!(rate(WorkloadKind::As400_1) > rate(WorkloadKind::As400_4));
        assert!(rate(WorkloadKind::Hplajw) < 5.0);
        assert!(rate(WorkloadKind::Att) > 30.0);
    }

    #[test]
    fn generated_rate_tracks_estimate() {
        for kind in [
            WorkloadKind::Snake,
            WorkloadKind::Att,
            WorkloadKind::As400_2,
        ] {
            let spec = WorkloadSpec::preset(kind);
            // Long window: the heavy-tailed idle gaps make short
            // samples very noisy.
            let dur = SimDuration::from_secs(2_000);
            let t = spec.generate(CAP, dur, 7);
            let measured = t.len() as f64 / dur.as_secs_f64();
            let expect = spec.offered_ios_per_sec();
            assert!(
                (measured - expect).abs() < expect * 0.35,
                "{}: measured {measured:.1}/s vs estimate {expect:.1}/s",
                spec.name
            );
        }
    }

    #[test]
    fn write_heavy_traces_are_write_heavy() {
        let t = WorkloadSpec::preset(WorkloadKind::CelloNews).generate(
            CAP,
            SimDuration::from_secs(120),
            3,
        );
        assert!(
            t.write_fraction() > 0.65,
            "cello-news wf {}",
            t.write_fraction()
        );
        let t = WorkloadSpec::preset(WorkloadKind::Netware).generate(
            CAP,
            SimDuration::from_secs(120),
            3,
        );
        assert!(
            t.write_fraction() > 0.75,
            "netware wf {}",
            t.write_fraction()
        );
    }

    #[test]
    fn workloads_use_distinct_rng_streams() {
        let a = WorkloadSpec::preset(WorkloadKind::As400_2).generate(
            CAP,
            SimDuration::from_secs(30),
            5,
        );
        let b = WorkloadSpec::preset(WorkloadKind::As400_3).generate(
            CAP,
            SimDuration::from_secs(30),
            5,
        );
        // Same user seed, different workloads: traffic must differ.
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = WorkloadSpec::preset(WorkloadKind::Snake);
        let a = spec.generate(CAP, SimDuration::from_secs(30), 5);
        let b = spec.generate(CAP, SimDuration::from_secs(30), 5);
        assert_eq!(a.records, b.records);
    }
}
