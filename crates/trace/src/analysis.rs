//! Trace characterisation.
//!
//! [`TraceProfile`] condenses a trace into the numbers that matter for
//! AFRAID: offered load, write fraction, request-size mix, and — above
//! all — the idle-time structure, because idle periods are where parity
//! gets rebuilt. "Real-life workloads really are bursty" is one of the
//! paper's stated lessons; [`TraceProfile::idle_fraction`] is how this
//! reproduction checks its synthetic traces honour that.

use afraid_sim::hash::U64Set;
use afraid_sim::stats::OnlineStats;
use afraid_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::record::{ReqKind, Trace};

/// Summary statistics for one trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Trace name.
    pub name: String,
    /// Number of requests.
    pub requests: u64,
    /// Reads.
    pub reads: u64,
    /// Writes.
    pub writes: u64,
    /// Trace span, first to last arrival.
    pub span: SimDuration,
    /// Mean request rate over the span (requests/s).
    pub rate: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Mean request size in bytes.
    pub mean_bytes: f64,
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// Approximate footprint: number of distinct 1 MB regions touched,
    /// in bytes.
    pub footprint_bytes: u64,
    /// Coefficient of variation of inter-arrival times (1 ≈ Poisson,
    /// larger = burstier).
    pub interarrival_cov: f64,
    /// Idle periods: gaps between consecutive arrivals exceeding the
    /// threshold used at construction.
    pub idle_periods: u64,
    /// Total idle time across those periods.
    pub idle_time: SimDuration,
    /// `idle_time / span`.
    pub idle_fraction: f64,
    /// Mean idle-period length.
    pub mean_idle: SimDuration,
}

impl TraceProfile {
    /// Profiles a trace, counting as "idle" any inter-arrival gap of at
    /// least `idle_threshold` (the AFRAID idle detector's 100 ms is the
    /// natural choice).
    pub fn new(trace: &Trace, idle_threshold: SimDuration) -> TraceProfile {
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut bytes = OnlineStats::new();
        let mut regions = U64Set::default();
        for r in &trace.records {
            match r.kind {
                ReqKind::Read => reads += 1,
                ReqKind::Write => writes += 1,
            }
            bytes.record(r.bytes as f64);
            let first = r.offset >> 20;
            let last = (r.offset + r.bytes - 1) >> 20;
            for region in first..=last {
                regions.insert(region);
            }
        }

        let mut inter = OnlineStats::new();
        let mut idle_periods = 0u64;
        let mut idle_time = SimDuration::ZERO;
        for w in trace.records.windows(2) {
            let gap = w[1].time.since(w[0].time);
            inter.record(gap.as_secs_f64());
            if gap >= idle_threshold {
                idle_periods += 1;
                idle_time += gap;
            }
        }

        let span = trace.span();
        let requests = trace.records.len() as u64;
        let rate = if span.is_zero() {
            0.0
        } else {
            requests as f64 / span.as_secs_f64()
        };
        let cov = if inter.mean() > 0.0 {
            inter.std_dev() / inter.mean()
        } else {
            0.0
        };
        TraceProfile {
            name: trace.name.clone(),
            requests,
            reads,
            writes,
            span,
            rate,
            write_fraction: trace.write_fraction(),
            mean_bytes: bytes.mean(),
            total_bytes: trace.total_bytes(),
            footprint_bytes: (regions.len() as u64) << 20,
            interarrival_cov: cov,
            idle_periods,
            idle_time,
            idle_fraction: if span.is_zero() {
                0.0
            } else {
                idle_time.as_secs_f64() / span.as_secs_f64()
            },
            mean_idle: if idle_periods == 0 {
                SimDuration::ZERO
            } else {
                idle_time / idle_periods
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::IoRecord;
    use crate::workloads::{WorkloadKind, WorkloadSpec};
    use afraid_sim::time::SimTime;

    fn burst_trace() -> Trace {
        // Two bursts of 3 requests 1 ms apart, separated by a 1 s gap.
        let mut t = Trace::new("bursts", 1 << 30);
        let mut push = |ms: u64, kind| {
            t.push(IoRecord {
                time: SimTime::from_millis(ms),
                offset: 0,
                bytes: 4096,
                kind,
            })
        };
        for ms in [0, 1, 2, 1002, 1003, 1004] {
            push(
                ms,
                if ms % 2 == 0 {
                    ReqKind::Read
                } else {
                    ReqKind::Write
                },
            );
        }
        t
    }

    #[test]
    fn counts_and_rates() {
        let p = TraceProfile::new(&burst_trace(), SimDuration::from_millis(100));
        assert_eq!(p.requests, 6);
        assert_eq!(p.reads + p.writes, 6);
        assert_eq!(p.span, SimDuration::from_millis(1004));
        assert!((p.rate - 6.0 / 1.004).abs() < 0.01);
        assert_eq!(p.mean_bytes, 4096.0);
        assert_eq!(p.total_bytes, 6 * 4096);
    }

    #[test]
    fn idle_detection() {
        let p = TraceProfile::new(&burst_trace(), SimDuration::from_millis(100));
        assert_eq!(p.idle_periods, 1);
        assert_eq!(p.idle_time, SimDuration::from_millis(1000));
        assert!((p.idle_fraction - 1000.0 / 1004.0).abs() < 1e-9);
        assert_eq!(p.mean_idle, SimDuration::from_secs(1));
    }

    #[test]
    fn threshold_sensitivity() {
        // With a 2 s threshold the 1 s gap no longer counts as idle.
        let p = TraceProfile::new(&burst_trace(), SimDuration::from_secs(2));
        assert_eq!(p.idle_periods, 0);
        assert_eq!(p.mean_idle, SimDuration::ZERO);
    }

    #[test]
    fn footprint_counts_regions() {
        let mut t = Trace::new("fp", 1 << 30);
        t.push(IoRecord {
            time: SimTime::ZERO,
            offset: 0,
            bytes: 4096,
            kind: ReqKind::Read,
        });
        t.push(IoRecord {
            time: SimTime::from_millis(1),
            offset: 10 << 20,
            bytes: 4096,
            kind: ReqKind::Read,
        });
        // A request spanning a 1 MB boundary touches two regions.
        t.push(IoRecord {
            time: SimTime::from_millis(2),
            offset: (20 << 20) - 2048,
            bytes: 4096,
            kind: ReqKind::Read,
        });
        let p = TraceProfile::new(&t, SimDuration::from_millis(100));
        assert_eq!(p.footprint_bytes, 4 << 20);
    }

    #[test]
    fn empty_trace_profile() {
        let t = Trace::new("empty", 1 << 20);
        let p = TraceProfile::new(&t, SimDuration::from_millis(100));
        assert_eq!(p.requests, 0);
        assert_eq!(p.rate, 0.0);
        assert_eq!(p.idle_fraction, 0.0);
    }

    #[test]
    fn bursty_workloads_show_high_idle_fraction() {
        // The paper's premise: bursty traces leave most wall-clock time
        // idle. hplajw must show large idle fraction; att small.
        let cap = 8u64 << 30;
        let dur = SimDuration::from_secs(300);
        let hplajw = WorkloadSpec::preset(WorkloadKind::Hplajw).generate(cap, dur, 1);
        let att = WorkloadSpec::preset(WorkloadKind::Att).generate(cap, dur, 1);
        let ph = TraceProfile::new(&hplajw, SimDuration::from_millis(100));
        let pa = TraceProfile::new(&att, SimDuration::from_millis(100));
        assert!(
            ph.idle_fraction > 0.8,
            "hplajw idle fraction {}",
            ph.idle_fraction
        );
        assert!(pa.idle_fraction < ph.idle_fraction);
        assert!(
            ph.interarrival_cov > 1.5,
            "hplajw CoV {}",
            ph.interarrival_cov
        );
    }
}
