//! Trace serialisation.
//!
//! Two formats are provided:
//!
//! * A compact line-oriented text format, one request per line —
//!   human-inspectable and diff-friendly, used by the examples:
//!
//!   ```text
//!   # afraid-trace v1
//!   name cello-news
//!   capacity 8589934592
//!   1500000 4096 8192 W
//!   ```
//!
//!   (columns: arrival time in ns, byte offset, length, R/W).
//!
//! * JSON via serde, for programmatic interchange.

use afraid_sim::time::SimTime;
use std::fmt;
use std::io::{BufRead, Write};

use crate::record::{IoRecord, ReqKind, Trace};

/// Errors arising while reading a serialised trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid input, with a line number and message.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the v1 text format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "# afraid-trace v1")?;
    writeln!(w, "name {}", trace.name)?;
    writeln!(w, "capacity {}", trace.capacity)?;
    for r in &trace.records {
        let k = match r.kind {
            ReqKind::Read => 'R',
            ReqKind::Write => 'W',
        };
        writeln!(w, "{} {} {} {k}", r.time.as_nanos(), r.offset, r.bytes)?;
    }
    Ok(())
}

/// Reads a trace in the v1 text format.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on malformed input and
/// [`TraceIoError::Io`] on read failures.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut lines = r.lines().enumerate();
    let mut expect = |want: &str| -> Result<(usize, String), TraceIoError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => {
                let _ = i;
                Err(TraceIoError::Io(e))
            }
            None => Err(TraceIoError::Parse {
                line: 0,
                message: format!("missing {want}"),
            }),
        }
    };

    let (line, header) = expect("header")?;
    if header.trim() != "# afraid-trace v1" {
        return Err(TraceIoError::Parse {
            line,
            message: "bad header".into(),
        });
    }
    let (line, name_line) = expect("name")?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or(TraceIoError::Parse {
            line,
            message: "expected `name <s>`".into(),
        })?
        .to_string();
    let (line, cap_line) = expect("capacity")?;
    let capacity: u64 = cap_line
        .strip_prefix("capacity ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or(TraceIoError::Parse {
            line,
            message: "expected `capacity <n>`".into(),
        })?;

    let mut trace = Trace::new(name, capacity);
    for (i, l) in lines {
        let line = i + 1;
        let l = l?;
        if l.trim().is_empty() {
            continue;
        }
        let mut parts = l.split_whitespace();
        let parse_field = |s: Option<&str>, what: &str| -> Result<u64, TraceIoError> {
            s.and_then(|v| v.parse().ok())
                .ok_or_else(|| TraceIoError::Parse {
                    line,
                    message: format!("bad {what}"),
                })
        };
        let t = parse_field(parts.next(), "time")?;
        let offset = parse_field(parts.next(), "offset")?;
        let bytes = parse_field(parts.next(), "length")?;
        let kind = match parts.next() {
            Some("R") => ReqKind::Read,
            Some("W") => ReqKind::Write,
            other => {
                return Err(TraceIoError::Parse {
                    line,
                    message: format!("bad kind {other:?}"),
                })
            }
        };
        if parts.next().is_some() {
            return Err(TraceIoError::Parse {
                line,
                message: "trailing fields".into(),
            });
        }
        // Validate through Trace::push's invariants, but convert the
        // panic conditions into errors for untrusted input.
        if bytes == 0 || bytes % 512 != 0 || offset % 512 != 0 || offset + bytes > capacity {
            return Err(TraceIoError::Parse {
                line,
                message: "invalid record".into(),
            });
        }
        if trace
            .records
            .last()
            .is_some_and(|prev| prev.time.as_nanos() > t)
        {
            return Err(TraceIoError::Parse {
                line,
                message: "time regression".into(),
            });
        }
        trace.push(IoRecord {
            time: SimTime::from_nanos(t),
            offset,
            bytes,
            kind,
        });
    }
    Ok(trace)
}

/// Serialises a trace as JSON.
///
/// # Errors
///
/// Returns any serialisation or I/O error.
pub fn write_json<W: Write>(trace: &Trace, w: W) -> Result<(), serde_json::Error> {
    serde_json::to_writer(w, trace)
}

/// Deserialises a trace from JSON.
///
/// # Errors
///
/// Returns any deserialisation or I/O error.
pub fn read_json<R: std::io::Read>(r: R) -> Result<Trace, serde_json::Error> {
    serde_json::from_reader(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{WorkloadKind, WorkloadSpec};
    use afraid_sim::time::SimDuration;

    fn sample() -> Trace {
        WorkloadSpec::preset(WorkloadKind::Snake).generate(1 << 30, SimDuration::from_secs(10), 1)
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(back.name, t.name);
        assert_eq!(back.capacity, t.capacity);
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_json(&t, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back.records, t.records);
    }

    #[test]
    fn rejects_bad_header() {
        let err = read_text("nonsense\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_bad_kind() {
        let input = "# afraid-trace v1\nname x\ncapacity 4096\n0 0 512 Q\n";
        let err = read_text(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 4, .. }), "{err}");
    }

    #[test]
    fn rejects_unaligned_record() {
        let input = "# afraid-trace v1\nname x\ncapacity 4096\n0 0 100 R\n";
        assert!(read_text(input.as_bytes()).is_err());
    }

    #[test]
    fn rejects_time_regression() {
        let input = "# afraid-trace v1\nname x\ncapacity 4096\n5 0 512 R\n1 0 512 R\n";
        let err = read_text(input.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 5, .. }), "{err}");
    }

    #[test]
    fn rejects_record_beyond_capacity() {
        let input = "# afraid-trace v1\nname x\ncapacity 1024\n0 512 1024 R\n";
        assert!(read_text(input.as_bytes()).is_err());
    }

    #[test]
    fn skips_blank_lines() {
        let input = "# afraid-trace v1\nname x\ncapacity 4096\n\n0 0 512 R\n\n";
        let t = read_text(input.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let err = TraceIoError::Parse {
            line: 3,
            message: "bad kind".into(),
        };
        assert_eq!(format!("{err}"), "parse error at line 3: bad kind");
    }
}
