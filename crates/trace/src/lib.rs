//! Synthetic I/O trace substrate.
//!
//! The AFRAID paper is trace-driven: nine proprietary workloads
//! (hplajw, snake, cello-usr, cello-news, netware, ATT, AS400-1..4)
//! replayed through the Pantheon simulator. Those traces were never
//! published, so this crate synthesises stand-ins from the published
//! characterisations (\[Ruemmler93\] and the paper's own workload
//! descriptions). What AFRAID's results depend on — and what the
//! generators therefore control — is:
//!
//! * **burst/idle structure**: requests arrive in bursts separated by
//!   idle gaps whose distribution is heavy-tailed;
//! * **write fraction**: parity lag only grows on writes;
//! * **request sizes**: small updates are where RAID 5 pays;
//! * **spatial locality**: sequential runs vs. skewed random access
//!   determine seek costs and stripe-coalescing opportunities;
//! * **offered load**: how close the array runs to saturation decides
//!   whether idle-time parity rebuilding is free.
//!
//! The module layout: [`record`] defines the trace format, [`gen`] the
//! generators, [`workloads`] the nine presets, [`analysis`] the
//! characterisation tools, and [`io`] a serialised on-disk format.

pub mod analysis;
pub mod gen;
pub mod io;
pub mod record;
pub mod workloads;

pub use analysis::TraceProfile;
pub use gen::onoff::OnOffGenerator;
pub use gen::spatial::SpatialModel;
pub use record::{IoRecord, ReqKind, Trace};
pub use workloads::{WorkloadKind, WorkloadSpec};
