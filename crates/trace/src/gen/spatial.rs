//! Spatial locality model.
//!
//! Disk traffic mixes sequential runs (file reads/writes, log appends)
//! with skewed random access (metadata, database index pages). The
//! model used here:
//!
//! * With probability `seq_prob`, the next request continues at the
//!   byte following the previous one (a sequential run).
//! * Otherwise it jumps: a hot region is drawn from a Zipf distribution
//!   over `regions` equal slices of the footprint, then a uniformly
//!   random aligned offset within that region.
//!
//! The *footprint* is the fraction of the array's logical space the
//! workload ever touches — production systems rarely touch everything.

use afraid_sim::dist::Zipf;
use afraid_sim::rng::SplitMix64;

/// Generates request offsets with tunable sequentiality and skew.
#[derive(Clone, Debug)]
pub struct SpatialModel {
    capacity: u64,
    footprint: u64,
    seq_prob: f64,
    zipf: Zipf,
    regions: u64,
    cursor: u64,
}

impl SpatialModel {
    /// Creates a spatial model.
    ///
    /// * `capacity` — array logical capacity in bytes.
    /// * `footprint_frac` — fraction of capacity the workload touches.
    /// * `seq_prob` — probability a request continues the previous run.
    /// * `regions` — number of hot-region slices.
    /// * `zipf_s` — Zipf skew across regions (0 = uniform).
    ///
    /// # Panics
    ///
    /// Panics on an empty footprint or out-of-range probabilities.
    pub fn new(
        capacity: u64,
        footprint_frac: f64,
        seq_prob: f64,
        regions: usize,
        zipf_s: f64,
    ) -> Self {
        assert!(capacity >= 512, "capacity too small");
        assert!(
            (0.0..=1.0).contains(&footprint_frac) && footprint_frac > 0.0,
            "bad footprint fraction {footprint_frac}"
        );
        assert!((0.0..=1.0).contains(&seq_prob), "bad seq probability");
        assert!(regions > 0, "need at least one region");
        // Footprint, sector-aligned, at least one sector.
        let footprint = (((capacity as f64 * footprint_frac) as u64) / 512).max(1) * 512;
        SpatialModel {
            capacity,
            footprint,
            seq_prob,
            zipf: Zipf::new(regions, zipf_s),
            regions: regions as u64,
            cursor: 0,
        }
    }

    /// The byte footprint the model draws from.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// Produces the next request's offset, given its length in bytes.
    ///
    /// The returned offset is sector-aligned and `offset + bytes` never
    /// exceeds the capacity.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero, unaligned, or larger than the
    /// footprint.
    pub fn next_offset(&mut self, rng: &mut SplitMix64, bytes: u64) -> u64 {
        assert!(
            bytes > 0 && bytes.is_multiple_of(512),
            "bad request length {bytes}"
        );
        assert!(bytes <= self.footprint, "request larger than footprint");
        let offset = if rng.chance(self.seq_prob) {
            // Continue the run, wrapping at the footprint edge.
            if self.cursor + bytes <= self.footprint {
                self.cursor
            } else {
                0
            }
        } else {
            let region = self.zipf.rank(rng) as u64;
            // Keep region boundaries sector-aligned.
            let region_len = (self.footprint / self.regions / 512 * 512).max(512);
            let region_start = region_len * region;
            let max_start = (region_start + region_len)
                .min(self.footprint)
                .saturating_sub(bytes);
            if max_start <= region_start {
                region_start.min(self.footprint - bytes)
            } else {
                let sectors = (max_start - region_start) / 512;
                region_start + rng.next_below(sectors + 1) * 512
            }
        };
        self.cursor = offset + bytes;
        debug_assert!(offset % 512 == 0);
        debug_assert!(offset + bytes <= self.capacity);
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 64 * 1024 * 1024;

    #[test]
    fn offsets_always_in_bounds_and_aligned() {
        let mut m = SpatialModel::new(CAP, 0.5, 0.3, 16, 1.0);
        let mut rng = SplitMix64::new(1);
        for i in 0..10_000 {
            let bytes = 512 * (1 + (i % 32));
            let off = m.next_offset(&mut rng, bytes);
            assert_eq!(off % 512, 0);
            assert!(off + bytes <= CAP);
            assert!(off + bytes <= m.footprint());
        }
    }

    #[test]
    fn fully_sequential_walks_forward() {
        let mut m = SpatialModel::new(CAP, 1.0, 1.0, 1, 0.0);
        let mut rng = SplitMix64::new(2);
        let a = m.next_offset(&mut rng, 4096);
        let b = m.next_offset(&mut rng, 4096);
        let c = m.next_offset(&mut rng, 8192);
        assert_eq!(b, a + 4096);
        assert_eq!(c, b + 4096);
    }

    #[test]
    fn sequential_wraps_at_footprint() {
        let mut m = SpatialModel::new(1024 * 1024, 0.01, 1.0, 1, 0.0);
        let mut rng = SplitMix64::new(3);
        let fp = m.footprint();
        let mut last = m.next_offset(&mut rng, 4096);
        let mut wrapped = false;
        for _ in 0..10 {
            let off = m.next_offset(&mut rng, 4096);
            if off < last {
                assert_eq!(off, 0, "wrap must restart at zero");
                wrapped = true;
            }
            assert!(off + 4096 <= fp);
            last = off;
        }
        assert!(wrapped, "footprint of {fp} should force a wrap");
    }

    #[test]
    fn skew_concentrates_traffic() {
        let mut m = SpatialModel::new(CAP, 1.0, 0.0, 8, 1.5);
        let mut rng = SplitMix64::new(4);
        let region_len = m.footprint() / 8;
        let mut counts = [0u32; 8];
        for _ in 0..20_000 {
            let off = m.next_offset(&mut rng, 512);
            counts[(off / region_len).min(7) as usize] += 1;
        }
        assert!(counts[0] > counts[4] * 2, "zipf skew missing: {counts:?}");
    }

    #[test]
    fn zero_skew_spreads_uniformly() {
        let mut m = SpatialModel::new(CAP, 1.0, 0.0, 8, 0.0);
        let mut rng = SplitMix64::new(5);
        let region_len = m.footprint() / 8;
        let mut counts = [0u32; 8];
        for _ in 0..40_000 {
            let off = m.next_offset(&mut rng, 512);
            counts[(off / region_len).min(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((3_500..6_500).contains(&c), "bucket {c}");
        }
    }

    #[test]
    fn footprint_restricts_range() {
        let mut m = SpatialModel::new(CAP, 0.1, 0.0, 4, 0.0);
        let mut rng = SplitMix64::new(6);
        let fp = m.footprint();
        assert!(fp <= CAP / 10 + 512);
        for _ in 0..5_000 {
            let off = m.next_offset(&mut rng, 4096);
            assert!(off + 4096 <= fp);
        }
    }

    #[test]
    #[should_panic(expected = "bad request length")]
    fn rejects_unaligned_length() {
        let mut m = SpatialModel::new(CAP, 1.0, 0.0, 4, 0.0);
        let mut rng = SplitMix64::new(7);
        let _ = m.next_offset(&mut rng, 100);
    }
}
