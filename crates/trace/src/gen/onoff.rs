//! Bursty ON/OFF arrival generator.
//!
//! \[Ruemmler93\]'s central observation — the one AFRAID is built on —
//! is that real disk traffic is bursty: groups of closely spaced
//! requests separated by comparatively long quiet gaps. The ON/OFF
//! generator reproduces that structure directly:
//!
//! * A *burst* contains a geometrically distributed number of requests
//!   with exponential intra-burst gaps.
//! * Bursts are separated by *idle gaps* drawn from a two-phase
//!   hyperexponential: most gaps are short (think sync bursts within
//!   one user action), a minority are very long (the user went to
//!   lunch). The long phase is what gives AFRAID its scrubbing time.

use afraid_sim::dist::{Empirical, Exponential, Hyperexponential, Sample};
use afraid_sim::rng::SplitMix64;
use afraid_sim::time::{SimDuration, SimTime};

use crate::gen::spatial::SpatialModel;
use crate::record::{IoRecord, ReqKind, Trace};

/// Parameters of the ON/OFF arrival process.
#[derive(Clone, Debug)]
pub struct OnOffGenerator {
    /// Mean number of requests per burst (geometric distribution).
    pub burst_len_mean: f64,
    /// Mean gap between requests inside a burst.
    pub intra_gap: Exponential,
    /// Gap between bursts.
    pub idle_gap: Hyperexponential,
    /// Probability a request is a write.
    pub write_prob: f64,
    /// Request size distribution, in bytes (512-aligned values).
    pub size_dist: Empirical,
}

impl OnOffGenerator {
    /// Generates a trace named `name` over `duration`, drawing offsets
    /// from `spatial` and randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `write_prob` is out of range or `burst_len_mean < 1`.
    pub fn generate(
        &self,
        name: &str,
        capacity: u64,
        duration: SimDuration,
        mut spatial: SpatialModel,
        rng: &mut SplitMix64,
    ) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.write_prob),
            "bad write probability"
        );
        assert!(
            self.burst_len_mean >= 1.0,
            "bursts need at least one request"
        );
        let mut trace = Trace::new(name, capacity);
        let end = SimTime::ZERO + duration;
        // Start inside an idle gap so the trace does not always open
        // with a burst at t=0.
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(self.idle_gap.sample(rng) / 1e3);
        'outer: loop {
            // One burst: geometric length with the configured mean.
            let p_stop = 1.0 / self.burst_len_mean;
            loop {
                if t >= end {
                    break 'outer;
                }
                let bytes = self.size_dist.sample(rng) as u64;
                let kind = if rng.chance(self.write_prob) {
                    ReqKind::Write
                } else {
                    ReqKind::Read
                };
                let offset = spatial.next_offset(rng, bytes);
                trace.push(IoRecord {
                    time: t,
                    offset,
                    bytes,
                    kind,
                });
                if rng.chance(p_stop) {
                    break;
                }
                t += SimDuration::from_secs_f64(self.intra_gap.sample(rng) / 1e3);
            }
            t += SimDuration::from_secs_f64(self.idle_gap.sample(rng) / 1e3);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 256 * 1024 * 1024;

    fn gen() -> OnOffGenerator {
        OnOffGenerator {
            burst_len_mean: 8.0,
            intra_gap: Exponential::with_mean(10.0), // ms
            idle_gap: Hyperexponential::new(0.8, 200.0, 5_000.0), // ms
            write_prob: 0.5,
            size_dist: Empirical::new(&[(4096.0, 0.5), (8192.0, 0.5)]),
        }
    }

    fn spatial() -> SpatialModel {
        SpatialModel::new(CAP, 0.5, 0.2, 8, 1.0)
    }

    #[test]
    fn produces_time_ordered_trace() {
        let mut rng = SplitMix64::new(1);
        let t = gen().generate("t", CAP, SimDuration::from_secs(120), spatial(), &mut rng);
        assert!(t.len() > 100, "only {} requests", t.len());
        for w in t.records.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(t.end_time() <= SimTime::ZERO + SimDuration::from_secs(120));
    }

    #[test]
    fn respects_write_fraction() {
        let mut rng = SplitMix64::new(2);
        let t = gen().generate("t", CAP, SimDuration::from_secs(600), spatial(), &mut rng);
        let wf = t.write_fraction();
        assert!((0.4..0.6).contains(&wf), "write fraction {wf}");
    }

    #[test]
    fn sizes_come_from_distribution() {
        let mut rng = SplitMix64::new(3);
        let t = gen().generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut rng);
        assert!(t.records.iter().all(|r| r.bytes == 4096 || r.bytes == 8192));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        let t1 = gen().generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut r1);
        let t2 = gen().generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut r2);
        assert_eq!(t1.records, t2.records);
    }

    #[test]
    fn different_seeds_differ() {
        let mut r1 = SplitMix64::new(10);
        let mut r2 = SplitMix64::new(11);
        let t1 = gen().generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut r1);
        let t2 = gen().generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut r2);
        assert_ne!(t1.records, t2.records);
    }

    #[test]
    fn bursty_structure_visible() {
        // Inter-arrival times should be far more variable than a
        // Poisson process: coefficient of variation well above 1.
        let mut rng = SplitMix64::new(4);
        let t = gen().generate("t", CAP, SimDuration::from_secs(600), spatial(), &mut rng);
        let mut stats = afraid_sim::stats::OnlineStats::new();
        for w in t.records.windows(2) {
            stats.record(w[1].time.since(w[0].time).as_secs_f64());
        }
        let cov = stats.std_dev() / stats.mean();
        assert!(
            cov > 1.5,
            "coefficient of variation {cov} too low for bursty traffic"
        );
    }

    #[test]
    fn write_prob_zero_yields_reads_only() {
        let mut g = gen();
        g.write_prob = 0.0;
        let mut rng = SplitMix64::new(5);
        let t = g.generate("t", CAP, SimDuration::from_secs(60), spatial(), &mut rng);
        assert!(t.records.iter().all(|r| r.kind == ReqKind::Read));
    }
}
