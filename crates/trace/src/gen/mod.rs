//! Trace generators.
//!
//! [`spatial`] decides *where* a request lands (sequential runs vs.
//! Zipf-skewed hot regions); [`onoff`] decides *when* requests arrive
//! (bursts separated by heavy-tailed idle gaps) and drives the spatial
//! model to emit complete [`crate::record::Trace`]s.

pub mod onoff;
pub mod spatial;
