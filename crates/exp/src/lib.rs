//! Deterministic parallel experiment engine.
//!
//! The paper's headline results are matrices of independent cells —
//! (trace × parity policy) pairs, each a complete simulation run. The
//! runs share nothing mutable, so they parallelise perfectly; the only
//! hazard is *accidental* nondeterminism creeping in through scheduling
//! order. This crate keeps the fan-out honest:
//!
//! * [`pool::map_parallel`] spreads work over scoped `std` threads
//!   (crates.io is unreachable in the build environment, so no rayon)
//!   and merges results **by input index**, never by completion order —
//!   the output is bit-identical whether `jobs` is 1 or 64.
//! * [`matrix::cell_seed`] derives each cell's RNG seed from its matrix
//!   coordinates alone, so a cell's random stream is independent of
//!   which worker ran it, and of whether any other cell ran at all.
//! * [`matrix::generate_traces`] builds each workload trace once and
//!   shares it across every policy via `Arc` instead of regenerating it
//!   per cell.
//!
//! The engine is generic over the cell function: `crates/bench` feeds
//! it full simulation runs, while unit tests feed it toy closures.
//!
//! Because the lint gate proves each cell is a pure function of its
//! coordinates, results can also be memoised *across* runs:
//! [`cache::CellCache`] hashes the full coordinates with the fixed
//! [`afraid_sim::hash`] hasher and replays serialized results
//! bit-identically from `target/cell-cache/`.

pub mod cache;
pub mod matrix;
pub mod pool;

pub use cache::{CacheKey, CacheStats, CellCache, KeyBuilder};
pub use matrix::{cell_rng, cell_seed, generate_traces, run_matrix, CellKey};
pub use pool::{default_jobs, jobs_from_args, map_parallel};
