//! Scoped-thread worker pool with deterministic result ordering.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the `AFRAID_JOBS` environment variable if set
/// to a positive integer, otherwise the machine's available
/// parallelism, otherwise 1.
pub fn default_jobs() -> usize {
    // lint:allow(d1) jobs only sizes the worker pool; results are byte-identical at any count (tests/parallel_determinism.rs)
    std::env::var("AFRAID_JOBS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&j| j > 0)
        .unwrap_or_else(|| {
            // lint:allow(d1) same as above: machine parallelism picks a default pool size, never a result
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Extracts `--jobs N` (or `--jobs=N`) from a raw argument list,
/// returning the resolved job count and the remaining arguments.
/// Falls back to [`default_jobs`] when the flag is absent.
///
/// # Panics
///
/// Panics with a usage message if the flag is present but malformed.
pub fn jobs_from_args(args: &[String]) -> (usize, Vec<String>) {
    let mut jobs = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--jobs" {
            let v = it.next().unwrap_or_else(|| panic!("--jobs needs a value"));
            jobs = Some(parse_jobs(v));
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs(v));
        } else {
            rest.push(a.clone());
        }
    }
    (jobs.unwrap_or_else(default_jobs), rest)
}

fn parse_jobs(v: &str) -> usize {
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => panic!("--jobs expects a positive integer, got {v:?}"),
    }
}

/// Applies `f` to every item and returns the results **in input
/// order**, computing up to `jobs` items concurrently.
///
/// Work distribution is a shared atomic cursor: each worker claims the
/// next unclaimed index, computes it, and stashes `(index, result)`
/// locally. After all workers join, results are merged by index — so
/// the output is a pure function of `(items, f)`, independent of
/// thread scheduling. `jobs <= 1` (or a single item) short-circuits to
/// a plain sequential loop with no thread machinery at all.
///
/// # Panics
///
/// Propagates panics from `f` (the pool joins all workers first).
pub fn map_parallel<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        // lint:allow(d8) relaxed is sound: fetch_add is a single atomic RMW, so every index is claimed exactly once; results are ordered by the slot index, not by claim order
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(i, &items[i])));
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("experiment worker panicked") {
                debug_assert!(slots[i].is_none(), "index {i} claimed twice");
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_parallel(8, &items, |i, &x| {
            // Uneven work so completion order differs from input order.
            let mut acc = x;
            for _ in 0..(x % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i as u64, x, acc)
        });
        for (i, &(idx, x, _)) in out.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let items: Vec<u32> = (0..64).collect();
        let f = |i: usize, &x: &u32| (i as u32) * 1000 + x * x;
        let seq = map_parallel(1, &items, f);
        let par = map_parallel(4, &items, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_items() {
        let items: Vec<u32> = Vec::new();
        let out = map_parallel(4, &items, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_items() {
        let items = vec![1u32, 2, 3];
        let out = map_parallel(64, &items, |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn zero_jobs_is_sequential() {
        let items = vec![5u32, 6];
        assert_eq!(map_parallel(0, &items, |_, &x| x), vec![5, 6]);
    }

    #[test]
    fn jobs_flag_parsing() {
        let args: Vec<String> = ["600", "--jobs", "3", "extra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (jobs, rest) = jobs_from_args(&args);
        assert_eq!(jobs, 3);
        assert_eq!(rest, vec!["600".to_string(), "extra".to_string()]);

        let args: Vec<String> = vec!["--jobs=7".to_string()];
        let (jobs, rest) = jobs_from_args(&args);
        assert_eq!(jobs, 7);
        assert!(rest.is_empty());

        let (jobs, _) = jobs_from_args(&[]);
        assert!(jobs >= 1);
    }
}
