//! Cross-run cell cache: memoises serialized cell results on disk.
//!
//! PR 5's determinism gate machine-checks that every matrix cell is a
//! pure function of its coordinates — which makes those coordinates a
//! sound cache key. This module exploits that: a cell's full
//! coordinates (base seed, trace kind + capacity + duration, policy,
//! the complete `ArrayConfig` encoding, plus a code-version salt) are
//! hashed with the repo's fixed [`afraid_sim::hash::FxU64Hasher`] into
//! a 128-bit key, and the serialized result is memoised under
//! `target/cell-cache/<key>.json`.
//!
//! Invariants, in order of importance:
//!
//! 1. **Bit-identity.** A warm-cache run must produce byte-identical
//!    reports to a cold run. Entries store the exact serialized bytes
//!    a fresh run would have produced, and the vendored serde_json's
//!    `f64` formatting round-trips bit-exactly, so replaying an entry
//!    is indistinguishable from re-simulating. A tier-1 test enforces
//!    this end to end.
//! 2. **Never a panic, never a wrong result.** Unreadable, truncated,
//!    or schema-mismatched entries are *misses*: every entry is
//!    self-describing (schema tag, key echo, payload digest) and any
//!    validation failure falls back to a fresh simulation.
//! 3. **Torn-write safety under `--jobs N`.** Entries are written to a
//!    unique temp file and atomically renamed into place, so a
//!    concurrent reader sees either no entry or a complete one.
//!
//! Invalidation is by key, never by mutation: the key includes a
//! schema tag and the crate version, so a code change that bumps
//! either simply orphans old entries (the directory is disposable —
//! it lives under `target/`).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use afraid_sim::hash::FxU64Hasher;
use std::hash::Hasher;

/// A 128-bit cache key: two decorrelated [`FxU64Hasher`] lanes over
/// the same coordinate stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheKey([u64; 2]);

impl CacheKey {
    /// 32-hex-digit rendering, used as the entry's file stem.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }
}

/// Distinct lane salts so the two halves of a [`CacheKey`] decorrelate
/// even though they consume the same input stream.
const LANE_SALTS: [u64; 2] = [0xafae_1d00_0000_0001, 0x5afe_c0de_0000_0002];

/// Accumulates a cell's coordinates into a [`CacheKey`].
///
/// All writes are length- or type-framed (strings are prefixed with
/// their byte length) so adjacent fields cannot alias — `("ab", "c")`
/// and `("a", "bc")` hash differently. Construction seeds both lanes
/// with the schema tag and the crate version, which is the cache's
/// invalidation salt: any result-shape or simulator change that bumps
/// either orphans all previous entries.
#[derive(Clone)]
pub struct KeyBuilder {
    lanes: [FxU64Hasher; 2],
}

impl KeyBuilder {
    /// Starts a key for the given schema tag (e.g. `"run-result-v1"`).
    pub fn new(schema: &str) -> KeyBuilder {
        let mut lanes = [FxU64Hasher::default(), FxU64Hasher::default()];
        for (lane, salt) in lanes.iter_mut().zip(LANE_SALTS) {
            lane.write_u64(salt);
        }
        KeyBuilder { lanes }
            .str(schema)
            .str(env!("CARGO_PKG_VERSION"))
    }

    /// Mixes in one integer coordinate.
    #[must_use]
    pub fn u64(mut self, v: u64) -> KeyBuilder {
        self.lanes[0].write_u64(v);
        // The second lane sees a rotated view so the two weak lanes
        // do not collapse into correlated states.
        self.lanes[1].write_u64(v.rotate_left(32));
        self
    }

    /// Mixes in one float coordinate, by bit pattern (injective, and
    /// distinguishes `-0.0` from `0.0` and every NaN payload).
    #[must_use]
    pub fn f64(self, v: f64) -> KeyBuilder {
        self.u64(v.to_bits())
    }

    /// Mixes in one string coordinate, length-framed.
    #[must_use]
    pub fn str(mut self, s: &str) -> KeyBuilder {
        self.lanes[0].write_u64(s.len() as u64);
        self.lanes[1].write_u64((s.len() as u64).rotate_left(32));
        self.lanes[0].write(s.as_bytes());
        self.lanes[1].write(s.as_bytes());
        self
    }

    /// Finalises the key.
    pub fn finish(self) -> CacheKey {
        CacheKey([self.lanes[0].finish(), self.lanes[1].finish()])
    }
}

/// Digest guarding an entry's payload against truncation/corruption.
fn payload_digest(payload: &str) -> u64 {
    let mut h = FxU64Hasher::default();
    h.write_u64(0xd16e_5700_0000_0003);
    h.write_u64(payload.len() as u64);
    h.write(payload.as_bytes());
    h.finish()
}

/// On-disk shape of one cache entry. Self-describing so a reader can
/// reject anything stale or torn without trusting the file name.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    schema: String,
    key: String,
    digest: String,
    payload: String,
}

/// Snapshot of a cache's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Valid entries replayed instead of re-simulating.
    pub hits: u64,
    /// Lookups with no entry on disk (fresh run, then stored).
    pub misses: u64,
    /// Entries present but rejected — unreadable, truncated, corrupt,
    /// or schema-mismatched. Each also fell back to a fresh run.
    pub invalid: u64,
    /// Entries successfully written.
    pub stored: u64,
}

impl CacheStats {
    /// Total lookups served.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.invalid
    }

    /// One-line human summary, used by the bench binaries and the CLI.
    pub fn summary(&self) -> String {
        format!(
            "cell cache: {} hits (simulation skipped), {} misses, {} invalid entries, {} stored",
            self.hits, self.misses, self.invalid, self.stored
        )
    }
}

/// A directory of memoised cell results. Shared by reference across
/// worker threads: all counters are atomic and all file writes are
/// atomic-rename, so `&CellCache` is safe under any `--jobs N`.
pub struct CellCache {
    dir: PathBuf,
    schema: String,
    hits: AtomicU64,
    misses: AtomicU64,
    invalid: AtomicU64,
    stored: AtomicU64,
    tmp_seq: AtomicU64,
}

/// Outcome of reading and validating an entry file.
enum ReadOutcome {
    Valid(String),
    Absent,
    Invalid,
}

impl CellCache {
    /// Opens (lazily — no I/O happens here) a cache rooted at `dir`,
    /// tagging every entry with `schema`.
    pub fn new(dir: PathBuf, schema: &str) -> CellCache {
        CellCache {
            dir,
            schema: schema.to_string(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalid: AtomicU64::new(0),
            stored: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The workspace-conventional cache root, `target/cell-cache`.
    pub fn default_dir() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/cell-cache")
    }

    /// The directory entries live under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Starts a [`KeyBuilder`] seeded with this cache's schema tag.
    pub fn key_builder(&self) -> KeyBuilder {
        KeyBuilder::new(&self.schema)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Acquire),
            misses: self.misses.load(Ordering::Acquire),
            invalid: self.invalid.load(Ordering::Acquire),
            stored: self.stored.load(Ordering::Acquire),
        }
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Reads and fully validates the entry for `key`. Every failure
    /// mode — missing file, unreadable bytes, malformed JSON, wrong
    /// schema tag, wrong key echo, digest mismatch — degrades to
    /// `Absent`/`Invalid`; nothing here can panic.
    fn read_validated(&self, key: &CacheKey) -> ReadOutcome {
        let path = self.entry_path(key);
        if !path.exists() {
            return ReadOutcome::Absent;
        }
        // lint:allow(d1) cache read: the entry is validated below and replays the exact bytes a fresh run would produce; any failure falls back to simulation
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return ReadOutcome::Invalid,
        };
        let entry: Entry = match serde_json::from_str(&text) {
            Ok(e) => e,
            Err(_) => return ReadOutcome::Invalid,
        };
        let digest_ok = u64::from_str_radix(&entry.digest, 16)
            .map(|d| d == payload_digest(&entry.payload))
            .unwrap_or(false);
        if entry.schema == self.schema && entry.key == key.hex() && digest_ok {
            ReadOutcome::Valid(entry.payload)
        } else {
            ReadOutcome::Invalid
        }
    }

    /// Looks up the validated payload for `key`, counting the outcome.
    pub fn lookup(&self, key: &CacheKey) -> Option<String> {
        match self.read_validated(key) {
            ReadOutcome::Valid(p) => {
                self.hits.fetch_add(1, Ordering::AcqRel);
                Some(p)
            }
            ReadOutcome::Absent => {
                self.misses.fetch_add(1, Ordering::AcqRel);
                None
            }
            ReadOutcome::Invalid => {
                self.invalid.fetch_add(1, Ordering::AcqRel);
                None
            }
        }
    }

    /// Stores `payload` under `key` via temp-file-then-rename, so a
    /// concurrent reader observes either no entry or a complete one.
    /// Best-effort: I/O failure skips the store (the cache is an
    /// optimisation, never a correctness dependency).
    pub fn store(&self, key: &CacheKey, payload: &str) {
        let entry = Entry {
            schema: self.schema.clone(),
            key: key.hex(),
            digest: format!("{:016x}", payload_digest(payload)),
            payload: payload.to_string(),
        };
        let Ok(text) = serde_json::to_string(&entry) else {
            return;
        };
        // lint:allow(d1) cache write: creating the entry directory never feeds back into results
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        // Unique temp name per (process, store) so parallel workers —
        // and parallel *processes* — never collide mid-write.
        // lint:allow(d8) relaxed is sound: the counter only feeds temp-file name uniqueness, never results
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}-{}", std::process::id(), seq, key.hex()));
        // lint:allow(d1) cache write: atomic temp-then-rename publish of a result already computed deterministically
        if fs::write(&tmp, text.as_bytes()).is_err() {
            return;
        }
        // lint:allow(d1) cache write: rename is the atomic publish step; on failure the temp file is removed and the store is skipped
        if fs::rename(&tmp, self.entry_path(key)).is_ok() {
            self.stored.fetch_add(1, Ordering::AcqRel);
        } else {
            // lint:allow(d1) cache write: best-effort cleanup of an unpublished temp file
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Memoises `run` under `key`: replays a valid entry, otherwise
    /// runs fresh and stores the serialized result.
    ///
    /// On a hit the returned value is deserialized from the stored
    /// bytes; the serde layer round-trips `f64` bit-exactly, so this
    /// is indistinguishable from re-running. A validated payload that
    /// nevertheless fails to deserialise as `T` (the schema tag lied)
    /// counts as invalid and falls back to a fresh run.
    pub fn run_cached<T, F>(&self, key: &CacheKey, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        match self.read_validated(key) {
            ReadOutcome::Valid(payload) => match serde_json::from_str::<T>(&payload) {
                Ok(v) => {
                    self.hits.fetch_add(1, Ordering::AcqRel);
                    debug_assert_eq!(
                        serde_json::to_string(&v).ok().as_deref(),
                        Some(payload.as_str()),
                        "cache replay is not byte-stable"
                    );
                    v
                }
                Err(_) => {
                    self.invalid.fetch_add(1, Ordering::AcqRel);
                    self.run_and_store(key, run)
                }
            },
            ReadOutcome::Absent => {
                self.misses.fetch_add(1, Ordering::AcqRel);
                self.run_and_store(key, run)
            }
            ReadOutcome::Invalid => {
                self.invalid.fetch_add(1, Ordering::AcqRel);
                self.run_and_store(key, run)
            }
        }
    }

    fn run_and_store<T, F>(&self, key: &CacheKey, run: F) -> T
    where
        T: Serialize + Deserialize,
        F: FnOnce() -> T,
    {
        let v = run();
        if let Ok(payload) = serde_json::to_string(&v) {
            self.store(key, &payload);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> CellCache {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-cell-cache")
            .join(tag);
        let _ = fs::remove_dir_all(&dir);
        CellCache::new(dir, "test-v1")
    }

    #[test]
    fn keys_are_stable_and_framed() {
        let a = KeyBuilder::new("s").str("ab").str("c").finish();
        let b = KeyBuilder::new("s").str("a").str("bc").finish();
        let c = KeyBuilder::new("s").str("ab").str("c").finish();
        assert_eq!(a, c);
        assert_ne!(a, b, "string framing must prevent aliasing");
        assert_ne!(
            KeyBuilder::new("s").u64(1).finish(),
            KeyBuilder::new("s").u64(2).finish()
        );
        assert_ne!(
            KeyBuilder::new("s1").u64(1).finish(),
            KeyBuilder::new("s2").u64(1).finish(),
            "schema tag must salt the key"
        );
        assert_ne!(
            KeyBuilder::new("s").f64(0.0).finish(),
            KeyBuilder::new("s").f64(-0.0).finish(),
            "float coordinates hash by bit pattern"
        );
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn miss_then_store_then_hit() {
        let cache = tmp_cache("miss-store-hit");
        let key = cache.key_builder().u64(7).finish();
        let mut runs = 0u32;
        let v1: u64 = cache.run_cached(&key, || {
            runs += 1;
            42
        });
        let v2: u64 = cache.run_cached(&key, || {
            runs += 1;
            42
        });
        assert_eq!((v1, v2), (42, 42));
        assert_eq!(runs, 1, "second call must replay, not re-run");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalid, s.stored), (1, 1, 0, 1));
    }

    #[test]
    fn corrupt_entries_degrade_to_invalid_with_fresh_fallback() {
        let cache = tmp_cache("corrupt");
        let key = cache.key_builder().u64(9).finish();
        let _: u64 = cache.run_cached(&key, || 5);
        // Truncate the stored entry mid-payload.
        let path = cache.entry_path(&key);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        let v: u64 = cache.run_cached(&key, || 5);
        assert_eq!(v, 5);
        let s = cache.stats();
        assert_eq!(s.invalid, 1);
        // The fallback re-stored a good entry; next lookup hits.
        let _: u64 = cache.run_cached(&key, || unreachable!("entry must be valid again"));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn wrong_schema_or_key_echo_is_invalid() {
        let a = tmp_cache("schema-a");
        let key = a.key_builder().u64(1).finish();
        let _: u64 = a.run_cached(&key, || 3);
        // Same directory, different schema tag: the entry must not
        // replay even though the file parses.
        let b = CellCache::new(a.dir().to_path_buf(), "test-v2");
        // Note: different schema also changes the *key*, so build the
        // collision by hand — copy the entry under b's key name.
        let bkey = b.key_builder().u64(1).finish();
        fs::copy(a.entry_path(&key), b.entry_path(&bkey)).unwrap();
        let v: u64 = b.run_cached(&bkey, || 8);
        assert_eq!(v, 8, "schema-mismatched entry must not replay");
        assert_eq!(b.stats().invalid, 1);
    }

    #[test]
    fn payload_that_is_not_a_t_counts_invalid() {
        let cache = tmp_cache("wrong-type");
        let key = cache.key_builder().u64(2).finish();
        cache.store(&key, "\"not a number\"");
        let v: u64 = cache.run_cached(&key, || 11);
        assert_eq!(v, 11);
        assert_eq!(cache.stats().invalid, 1);
    }

    #[test]
    fn no_torn_temp_files_left_behind() {
        let cache = tmp_cache("tmp-clean");
        for i in 0..8u64 {
            let key = cache.key_builder().u64(i).finish();
            let _: u64 = cache.run_cached(&key, || i);
        }
        let leftovers: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
    }
}
