//! Experiment matrices: (trace × policy) grids of independent cells.

use std::sync::Arc;

use afraid_sim::rng::SplitMix64;
use afraid_sim::time::SimDuration;
use afraid_trace::record::Trace;
use afraid_trace::workloads::{WorkloadKind, WorkloadSpec};

use crate::pool::map_parallel;

/// Coordinates of one cell in an experiment matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// Row: index into the trace list.
    pub trace: usize,
    /// Column: index into the policy list.
    pub policy: usize,
}

/// Derives the RNG seed for one matrix cell.
///
/// The seed is a pure function of `(base, trace, policy)`: the base
/// seed and each coordinate are pushed through SplitMix64's output
/// finaliser with distinct odd multipliers, so neighbouring cells get
/// decorrelated streams and — crucially for parallel determinism — the
/// stream a cell sees never depends on which worker ran it, in what
/// order, or how many other cells exist.
pub fn cell_seed(base: u64, trace: usize, policy: usize) -> u64 {
    let mut mix = SplitMix64::new(base);
    let stem = mix.next_u64();
    let lane = stem
        ^ (trace as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (policy as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    SplitMix64::new(lane).next_u64()
}

/// A ready-to-use RNG forked for one cell; see [`cell_seed`].
pub fn cell_rng(base: u64, trace: usize, policy: usize) -> SplitMix64 {
    SplitMix64::new(cell_seed(base, trace, policy))
}

/// Generates one trace per workload, in parallel, and wraps each in an
/// `Arc` so every policy cell of a row shares the same trace instead
/// of regenerating it. Generation itself is deterministic per
/// `(kind, capacity, duration, seed)`, so the parallelism is free.
pub fn generate_traces(
    jobs: usize,
    kinds: &[WorkloadKind],
    capacity: u64,
    duration: SimDuration,
    seed: u64,
) -> Vec<Arc<Trace>> {
    map_parallel(jobs, kinds, |_, &kind| {
        Arc::new(WorkloadSpec::preset(kind).generate(capacity, duration, seed))
    })
}

/// Runs every (trace × policy) cell through `run`, fanning cells over
/// `jobs` workers, and returns the results grouped by trace row (row
/// order = trace order, column order = policy order).
///
/// The full matrix is flattened into one work list so workers stay
/// busy across row boundaries: with 9 traces × 10 policies and 8
/// cores, no core idles waiting for a slow row to finish.
pub fn run_matrix<P, R, F>(
    jobs: usize,
    traces: &[Arc<Trace>],
    policies: &[P],
    run: F,
) -> Vec<Vec<R>>
where
    P: Sync,
    R: Send,
    F: Fn(&Trace, &P, CellKey) -> R + Sync,
{
    let cells: Vec<CellKey> = (0..traces.len())
        .flat_map(|t| {
            (0..policies.len()).map(move |p| CellKey {
                trace: t,
                policy: p,
            })
        })
        .collect();
    let flat = map_parallel(jobs, &cells, |_, &key| {
        run(&traces[key.trace], &policies[key.policy], key)
    });

    let mut rows: Vec<Vec<R>> = Vec::with_capacity(traces.len());
    let mut it = flat.into_iter();
    for _ in 0..traces.len() {
        rows.push(it.by_ref().take(policies.len()).collect());
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use afraid_sim::time::SimDuration;

    const CAP: u64 = 64 * 1024 * 1024;

    #[test]
    fn cell_seed_is_stable_and_distinct() {
        assert_eq!(cell_seed(42, 1, 2), cell_seed(42, 1, 2));
        let mut seen = std::collections::HashSet::new();
        for t in 0..16 {
            for p in 0..16 {
                assert!(seen.insert(cell_seed(42, t, p)), "collision at ({t},{p})");
            }
        }
        // Different base seeds give different streams.
        assert_ne!(cell_seed(42, 0, 0), cell_seed(43, 0, 0));
    }

    #[test]
    fn cell_rng_streams_are_decorrelated() {
        let a: Vec<u64> = {
            let mut r = cell_rng(42, 0, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = cell_rng(42, 0, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn traces_shared_not_regenerated() {
        let kinds = [WorkloadKind::Hplajw, WorkloadKind::Snake];
        let t1 = generate_traces(1, &kinds, CAP, SimDuration::from_secs(5), 42);
        let t2 = generate_traces(4, &kinds, CAP, SimDuration::from_secs(5), 42);
        assert_eq!(t1.len(), 2);
        for (a, b) in t1.iter().zip(&t2) {
            assert_eq!(a.records.len(), b.records.len());
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn matrix_shape_and_order() {
        let kinds = [WorkloadKind::Hplajw, WorkloadKind::Snake];
        let traces = generate_traces(1, &kinds, CAP, SimDuration::from_secs(2), 42);
        let policies = ["p0", "p1", "p2"];
        let rows = run_matrix(4, &traces, &policies, |trace, policy, key| {
            (key.trace, key.policy, trace.records.len(), *policy)
        });
        assert_eq!(rows.len(), 2);
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), 3);
            for (p, cell) in row.iter().enumerate() {
                assert_eq!(cell.0, t);
                assert_eq!(cell.1, p);
                assert_eq!(cell.3, policies[p]);
            }
        }
    }

    #[test]
    fn matrix_parallel_equals_sequential() {
        let kinds = [WorkloadKind::Hplajw, WorkloadKind::Snake];
        let traces = generate_traces(2, &kinds, CAP, SimDuration::from_secs(2), 42);
        let policies = [1u64, 2, 3];
        // A cell function that uses the per-cell RNG: still identical
        // across job counts because the seed depends only on the key.
        let run = |_t: &Trace, &p: &u64, key: CellKey| {
            let mut rng = cell_rng(42, key.trace, key.policy);
            (0..100).map(|_| rng.next_u64() % p.max(1)).sum::<u64>()
        };
        let seq = run_matrix(1, &traces, &policies, run);
        let par = run_matrix(4, &traces, &policies, run);
        assert_eq!(seq, par);
    }
}
