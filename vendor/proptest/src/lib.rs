//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this workspace
//! vendors a minimal property-testing harness with the same surface
//! the repo's tests use: `Strategy` (ranges, tuples, `Just`, `any`,
//! `prop_map`, `prop_oneof!`, `prop::collection::vec`) plus the
//! `proptest!`/`prop_assert!` macros.
//!
//! Differences from the real crate, accepted for this repo:
//!
//! * no shrinking — a failing case reports its case number and
//!   message, and the deterministic seeding (derived from the test
//!   function's name) makes every failure reproducible;
//! * uniform sampling only (real proptest biases towards edge cases).

use std::marker::PhantomData;
use std::ops::Range;

/// Everything the test files import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Harness configuration (subset of the real crate's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case, carrying the assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// SplitMix64 generator — deterministic across runs and platforms.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test name so each property gets an independent but
    /// reproducible stream.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (multiply-shift; n = 0 yields 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adaptor.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against FP rounding landing exactly on `end`.
        x.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a full-domain uniform strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// `prop::collection` — sized collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the enclosing property case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Defines property test functions: samples each argument strategy per
/// case and reports the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let x = (3u32..16).sample(&mut rng);
            assert!((3..16).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_streams() {
        let draw = || {
            let mut rng = crate::TestRng::deterministic("stream");
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![Just(1u64), (10u64..20).prop_map(|x| x * 2),];
        let mut rng = crate::TestRng::deterministic("compose");
        let mut saw_just = false;
        let mut saw_map = false;
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                1 => saw_just = true,
                x if (20..40).contains(&x) => saw_map = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(saw_just && saw_map);
    }

    #[test]
    fn vec_respects_size_range() {
        let strat = prop::collection::vec(0u64..5, 2..6);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The harness itself: args bind, asserts pass.
        #[test]
        fn harness_smoke(x in 0u64..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }
}
