//! Offline stand-in for `serde_json`: renders the serde stub's
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Output conventions match real serde_json where the repo depends on
//! them: floats use the shortest representation that parses back to
//! the same bits (plain or exponent form), `-0.0` keeps its sign,
//! non-finite floats are rejected with an error (real serde_json
//! emits `null`, which deserialises as NaN — silent corruption this
//! repo's byte-stable cache entries cannot tolerate), and pretty
//! output indents by two spaces.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON serialisation/deserialisation error.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Value/type mismatch or malformed JSON text, with a message.
    Data(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Data(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Data(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Data(e.to_string())
    }
}

/// Serialises `value` as compact JSON text.
///
/// # Errors
///
/// Returns [`Error::Data`] if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialises `value` as two-space-indented JSON text.
///
/// # Errors
///
/// Returns [`Error::Data`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serialises `value` as compact JSON into a writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn to_writer<W: Write, T: Serialize>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Deserialises a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error::Data`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialises a `T` from a reader of JSON text.
///
/// # Errors
///
/// Returns [`Error::Io`] on read failure, [`Error::Data`] otherwise.
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)?),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(out, &items[i], indent, d)
            })?;
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d)
            })?;
        }
    }
    Ok(())
}

/// Formats a finite `f64` as the shortest text that parses back to the
/// same bits, preferring plain decimal over exponent form on ties.
///
/// Rust's `Display` always emits a shortest round-trip decimal but
/// never uses exponent form, so extreme magnitudes balloon (`1e300`
/// becomes 301 digits); `LowerExp` also round-trips exactly.  `-0.0`
/// keeps its sign (`Display` prints `-0`, which the `.0` suffix turns
/// into `-0.0`, preserving the sign bit through a parse).
///
/// # Errors
///
/// Returns [`Error::Data`] for NaN and infinities: JSON cannot
/// represent them, and the legacy `null` fallback deserialised as NaN,
/// silently corrupting any value that survived a round trip.
fn fmt_f64(x: f64) -> Result<String, Error> {
    if !x.is_finite() {
        return Err(Error::Data(format!(
            "cannot serialise non-finite float {x} as JSON"
        )));
    }
    let mut plain = x.to_string();
    if !plain.contains(['.', 'e', 'E']) {
        plain.push_str(".0");
    }
    let exp = format!("{x:e}");
    if exp.len() < plain.len() {
        debug_assert_eq!(exp.parse::<f64>().map(f64::to_bits), Ok(x.to_bits()));
        Ok(exp)
    } else {
        debug_assert_eq!(plain.parse::<f64>().map(f64::to_bits), Ok(x.to_bits()));
        Ok(plain)
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * (depth + 1)));
        }
        item(out, i, depth + 1)?;
    }
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
    out.push(close);
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Data(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's printer; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            match text.parse::<f64>() {
                // `str::parse` accepts overflowing literals like
                // `1e999` and saturates to infinity; a non-finite
                // result here is a value we could never re-serialise,
                // so reject it at the boundary.
                Ok(x) if x.is_finite() => Ok(Value::F64(x)),
                Ok(_) => Err(self.err("number overflows f64")),
                Err(_) => Err(self.err("bad number")),
            }
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(v: &Value) -> String {
        let mut out = String::new();
        write_value(&mut out, v, None, 0).unwrap();
        out
    }

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "42", "-17", "3.5", "\"hi\\n\""] {
            let v = parse(src).unwrap();
            assert_eq!(render(&v), src);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(src).unwrap();
        assert_eq!(render(&v), src);
    }

    #[test]
    fn pretty_indents() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0).unwrap();
        assert_eq!(out, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn nonfinite_floats_are_rejected() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            assert!(write_value(&mut out, &Value::F64(x), None, 0).is_err());
        }
    }

    #[test]
    fn parser_rejects_overflowing_floats() {
        assert!(parse("1e999").is_err());
        assert!(parse("-1e999").is_err());
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(render(&Value::F64(2.0)), "2.0");
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let text = render(&Value::F64(-0.0));
        assert_eq!(text, "-0.0");
        let back = match parse(&text).unwrap() {
            Value::F64(x) => x,
            other => panic!("expected F64, got {other:?}"),
        };
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn extreme_magnitudes_use_exponent_form() {
        assert_eq!(render(&Value::F64(1e300)), "1e300");
        assert_eq!(render(&Value::F64(5e-324)), "5e-324");
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        // A grid of awkward values: subnormals, integer boundaries,
        // values whose shortest form needs 17 digits, both zero signs.
        let cases = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            5e-324,
            2f64.powi(53),
            2f64.powi(53) + 2.0,
            0.300_000_000_000_000_04,
            std::f64::consts::TAU,
            1e300,
            -7.236_423_598_234e-200,
        ];
        for x in cases {
            let text = render(&Value::F64(x));
            let back = match parse(&text).unwrap() {
                Value::F64(b) => b,
                other => panic!("expected F64 for {text}, got {other:?}"),
            };
            assert_eq!(back.to_bits(), x.to_bits(), "round-trip broke for {text}");
            // Re-rendering the parsed value must be byte-stable.
            assert_eq!(render(&Value::F64(back)), text);
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
