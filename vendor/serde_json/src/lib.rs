//! Offline stand-in for `serde_json`: renders the serde stub's
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Output conventions match real serde_json where the repo depends on
//! them: non-finite floats serialise as `null`, floats use Rust's
//! shortest round-trip formatting, and pretty output indents by two
//! spaces.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::io::{Read, Write};

/// JSON serialisation/deserialisation error.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Value/type mismatch or malformed JSON text, with a message.
    Data(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Data(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Data(_) => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Data(e.to_string())
    }
}

/// Serialises `value` as compact JSON text.
///
/// # Errors
///
/// Infallible in practice; typed for API compatibility.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as two-space-indented JSON text.
///
/// # Errors
///
/// Infallible in practice; typed for API compatibility.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialises `value` as compact JSON into a writer.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn to_writer<W: Write, T: Serialize>(mut w: W, value: &T) -> Result<(), Error> {
    w.write_all(to_string(value)?.as_bytes())?;
    Ok(())
}

/// Deserialises a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error::Data`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialises a `T` from a reader of JSON text.
///
/// # Errors
///
/// Returns [`Error::Io`] on read failure, [`Error::Data`] otherwise.
pub fn from_reader<R: Read, T: Deserialize>(mut r: R) -> Result<T, Error> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    from_str(&buf)
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip formatting; make integral
                // floats unambiguous (`1.0`, not `1`).
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_bracketed(out, '[', ']', items.len(), indent, depth, |out, i, d| {
                write_value(out, &items[i], indent, d);
            });
        }
        Value::Map(entries) => {
            write_bracketed(out, '{', '}', entries.len(), indent, depth, |out, i, d| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, d);
            });
        }
    }
}

fn write_bracketed(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(n) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', n * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Data(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // crate's printer; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "42", "-17", "3.5", "\"hi\\n\""] {
            let v = parse(src).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(src).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, src);
    }

    #[test]
    fn pretty_indents() {
        let v = parse(r#"{"a":1}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(out, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn nonfinite_floats_are_null() {
        let mut out = String::new();
        write_value(&mut out, &Value::F64(f64::NAN), None, 0);
        assert_eq!(out, "null");
    }

    #[test]
    fn integral_float_keeps_point() {
        let mut out = String::new();
        write_value(&mut out, &Value::F64(2.0), None, 0);
        assert_eq!(out, "2.0");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
    }
}
