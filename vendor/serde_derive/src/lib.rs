//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implementations over the raw `proc_macro` token API (no `syn` or
//! `quote` — the registry is unreachable in this build environment).
//!
//! Supported item shapes — exactly what this workspace uses:
//!
//! * structs with named fields (serialised as maps),
//! * newtype structs (transparent, like real serde),
//! * tuple structs (sequences),
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default).
//!
//! `#[serde(...)]` attributes and generic parameters are not
//! supported and fail loudly at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives `serde::Serialize` for the item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated impl parses")
}

/// Derives `serde::Deserialize` for the item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stub: generic types are not supported (`{name}`)");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub`/`pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Punct(b)) = tokens.get(*i + 1) {
                    // Inner attribute `#![...]` — skip the bang too.
                    if b.as_char() == '!' {
                        *i += 1;
                    }
                }
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// `#[serde(...)]` attributes would silently change the wire format, so
/// reject them explicitly.
fn check_no_serde_attr(tokens: &[TokenTree], i: usize) {
    if let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(i), tokens.get(i + 1))
    {
        if p.as_char() == '#' && g.stream().to_string().starts_with("serde") {
            panic!("serde derive stub: #[serde(...)] attributes are not supported");
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        check_no_serde_attr(&tokens, i);
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, got {other}"),
        };
        fields.push(field);
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected `:` after field name"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        // Skip the separating comma, if any.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level comma (angle-bracket
/// nesting tracked by hand: `<`/`>` are plain puncts, not groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        arity += 1;
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        check_no_serde_attr(&tokens, i);
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, got {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde derive stub: explicit discriminants are not supported");
        }
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (
                name,
                format!("::serde::Value::Map(vec![{}])", entries.join(", ")),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(vec![{}])", items.join(", ")),
            )
        }
        Shape::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let var = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{name}::{var} => \
             ::serde::Value::Str(::std::string::String::from(\"{var}\")),"
        ),
        VariantKind::Named(fields) => {
            let binds = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{var} {{ {binds} }} => ::serde::Value::Map(vec![(\
                 ::std::string::String::from(\"{var}\"), \
                 ::serde::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
        VariantKind::Tuple(1) => format!(
            "{name}::{var}(x0) => ::serde::Value::Map(vec![(\
             ::std::string::String::from(\"{var}\"), \
             ::serde::Serialize::to_value(x0))]),"
        ),
        VariantKind::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
            let items: Vec<String> = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{name}::{var}({}) => ::serde::Value::Map(vec![(\
                 ::std::string::String::from(\"{var}\"), \
                 ::serde::Value::Seq(vec![{}]))]),",
                binds.join(", "),
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let (name, body) = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(v, \"{name}\", \"{f}\")?)?"
                    )
                })
                .collect();
            (
                name,
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::from_value(v)?))"
            ),
        ),
        Shape::TupleStruct { name, arity } => (name, de_seq_body(name, *arity)),
        Shape::UnitStruct { name } => (
            name,
            format!("{{ let _ = v; ::std::result::Result::Ok({name}) }}"),
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants.iter().map(|v| de_variant_arm(name, v)).collect();
            (
                name,
                format!(
                    "{{ let (tag, payload) = ::serde::variant(v, \"{name}\")?;\n\
                     match tag {{ {} other => ::std::result::Result::Err(\
                     ::serde::unknown_variant(\"{name}\", other)), }} }}",
                    arms.join(" ")
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Deserialises `ctor(items[0], items[1], ...)` from a `Seq` in `v`.
fn de_seq_body(ctor: &str, arity: usize) -> String {
    let items: Vec<String> = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
        .collect();
    format!(
        "match v {{\n\
         ::serde::Value::Seq(items) if items.len() == {arity} => \
         ::std::result::Result::Ok({ctor}({})),\n\
         other => ::std::result::Result::Err(::serde::Error::custom(\
         format!(\"{ctor}: expected {arity}-element sequence, got {{other:?}}\"))),\n\
         }}",
        items.join(", ")
    )
}

fn de_variant_arm(name: &str, v: &Variant) -> String {
    let var = &v.name;
    let need_payload = format!(
        "let p = payload.ok_or_else(|| ::serde::Error::custom(\
         \"{name}::{var}: missing payload\"))?;"
    );
    match &v.kind {
        VariantKind::Unit => format!("\"{var}\" => ::std::result::Result::Ok({name}::{var}),"),
        VariantKind::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(p, \"{name}::{var}\", \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "\"{var}\" => {{ {need_payload} \
                 ::std::result::Result::Ok({name}::{var} {{ {} }}) }},",
                inits.join(", ")
            )
        }
        VariantKind::Tuple(1) => format!(
            "\"{var}\" => {{ {need_payload} \
             ::std::result::Result::Ok({name}::{var}(\
             ::serde::Deserialize::from_value(p)?)) }},"
        ),
        VariantKind::Tuple(arity) => {
            let inner = de_seq_body(&format!("{name}::{var}"), *arity);
            format!("\"{var}\" => {{ {need_payload} let v = p; {inner} }},")
        }
    }
}
