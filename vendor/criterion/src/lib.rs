//! Offline stand-in for `criterion`.
//!
//! Provides just enough of the criterion 0.5 API for the workspace's
//! `harness = false` benches to compile and run: each benchmark
//! executes its closure a configured number of times and prints the
//! mean wall-clock duration. No statistics, plotting, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (ignored by this stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Names one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from the benchmark's parameter value.
    #[must_use]
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// Builds an id from a function name and a parameter value.
    #[must_use]
    pub fn new(function: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{param}"),
        }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean duration of one routine call, filled by `iter`/`iter_batched`.
    mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            std::hint::black_box(routine());
        }
        self.mean = start.elapsed() / self.sample_size as u32;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / self.sample_size as u32;
    }
}

/// Top-level benchmark runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        println!(
            "bench {name}: {:?}/iter ({} iters)",
            b.mean, self.sample_size
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group (no-op in this stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion 0.5.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion 0.5.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut seen = Vec::new();
        let mut counter = 0u32;
        let mut c = Criterion::default().sample_size(4);
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("seven"), &7u64, |b, &x| {
            b.iter(|| total += x)
        });
        group.finish();
        assert_eq!(total, 14);
    }
}
