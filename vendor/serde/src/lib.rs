//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors a minimal serialisation framework with the same surface the
//! repo actually uses: `Serialize`/`Deserialize` traits, derive macros
//! (see `serde_derive`), and a self-describing [`Value`] tree that
//! `serde_json` renders to and from JSON text.
//!
//! Conventions match real serde's JSON data model where the repo
//! depends on it: structs are maps, newtype structs are transparent,
//! unit enum variants are strings, and struct variants are externally
//! tagged (`{"Variant": {..fields..}}`).

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative ints use `U64`).
    I64(i64),
    /// Floating point. Non-finite values serialise as `Null`.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with insertion-ordered string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialisation/deserialisation error: a message describing the
/// mismatch between the value tree and the requested type.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Helpers used by derive-generated code.
// ---------------------------------------------------------------------

/// Fetches a required struct field from a map value.
///
/// # Errors
///
/// Errors when `v` is not a map or lacks `name`.
pub fn field<'a>(v: &'a Value, ty: &str, name: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Map(_) => v
            .get(name)
            .ok_or_else(|| Error::custom(format!("{ty}: missing field `{name}`"))),
        other => Err(Error::custom(format!("{ty}: expected map, got {other:?}"))),
    }
}

/// Splits an externally-tagged enum value into `(variant, payload)`.
///
/// Unit variants arrive as `Str(name)` (payload `None`); data-carrying
/// variants as a single-entry map `{name: payload}`.
///
/// # Errors
///
/// Errors when `v` is neither a string nor a single-entry map.
pub fn variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), Error> {
    match v {
        Value::Str(s) => Ok((s.as_str(), None)),
        Value::Map(entries) if entries.len() == 1 => {
            Ok((entries[0].0.as_str(), Some(&entries[0].1)))
        }
        other => Err(Error::custom(format!(
            "{ty}: expected variant string or single-entry map, got {other:?}"
        ))),
    }
}

/// Builds an "unknown variant" error.
#[must_use]
pub fn unknown_variant(ty: &str, got: &str) -> Error {
    Error::custom(format!("{ty}: unknown variant `{got}`"))
}

// ---------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(|_| {
                        Error::custom(format!(
                            "{n} out of range for {}", stringify!($t)
                        ))
                    }),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| {
                        Error::custom(format!("{n} out of range for i64"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // Real serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Container impls.
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                match v {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected {ARITY}-tuple, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(7u32).to_value(), Value::U64(7));
    }

    #[test]
    fn signed_split_between_u64_and_i64() {
        assert_eq!(5i64.to_value(), Value::U64(5));
        assert_eq!((-5i64).to_value(), Value::I64(-5));
        assert_eq!(i64::from_value(&Value::U64(9)).unwrap(), 9);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (3u64, 9u32);
        let v = t.to_value();
        assert_eq!(<(u64, u32)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}
