//! `afraid-cli` — run AFRAID simulations from the command line.
//!
//! ```text
//! afraid-cli run --workload snake --policy afraid --secs 600
//! afraid-cli run --workload att --policy mttdl:1e8 --fail-disk 2@300 --degraded
//! afraid-cli sweep --secs 120 --jobs 4
//! afraid-cli chaos --scenario rebuild --cuts 500 --jobs 4
//! afraid-cli workloads
//! afraid-cli policies
//! ```

use afraid::config::ArrayConfig;
use afraid::driver::{run_trace, RunOptions};
use afraid::policy::ParityPolicy;
use afraid::report::availability;
use afraid_bench::harness;
use afraid_chaos::Scenario;
use afraid_exp::CellCache;
use afraid_sim::time::{SimDuration, SimTime};
use afraid_trace::workloads::{WorkloadKind, WorkloadSpec};
use std::process::ExitCode;

const USAGE: &str = "\
afraid-cli — AFRAID array simulator (Savage & Wilkes, USENIX 1996)

USAGE:
    afraid-cli run [OPTIONS]     replay a synthetic workload
    afraid-cli sweep [OPTIONS]   run the full workload x policy matrix
    afraid-cli chaos [OPTIONS]   crash the array at many cut points and
                                 verify recovery at every one
    afraid-cli workloads         list workload presets
    afraid-cli policies          list parity policies

CHAOS OPTIONS:
    --scenario <name>     baseline | scrub | rebuild | evict | nvram |
                          corrupt | all (default: all)
    --cuts <n>            cut points per scenario, spread evenly over
                          the run (default: 256)
    --secs <n>            simulated trace duration (default: 5; chaos
                          replays the run once per cut, keep it short)
    --seed <n>            workload seed (default: 42)
    --jobs <n>            worker threads; verdicts are bit-identical at
                          any job count (default: all cores)
    --cache               replay memoised cut verdicts from
                          target/cell-cache
    --no-cache            disable the cell cache (default)
    --json                emit per-scenario summaries as JSON; cache
                          counters then go to stderr
    exits nonzero if any cut fails recovery verification

SWEEP OPTIONS:
    --secs <n>            simulated trace duration (default: 600)
    --seed <n>            workload seed (default: 42)
    --jobs <n>            worker threads; results are bit-identical for
                          any job count (default: all cores)
    --full                run the full Figure 3 policy grid (RAID 5,
                          seven MTTDL_x targets, AFRAID, RAID 0)
                          instead of the three headline designs
    --cache               replay memoised cells from target/cell-cache;
                          results are bit-identical to a fresh run
    --no-cache            disable the cell cache (default)
    --json                emit the matrix as JSON; cache counters then
                          go to stderr so stdout stays byte-comparable
                          between cold and warm runs

RUN OPTIONS:
    --workload <name>     workload preset (default: snake)
    --policy <spec>       raid0 | afraid | raid5 | mttdl:<hours> |
                          conservative:<bytes> (default: afraid)
    --secs <n>            simulated trace duration (default: 600)
    --seed <n>            workload seed (default: 42)
    --disks <n>           spindles in the array (default: 5)
    --fail-disk <d>@<s>   fail disk d at s seconds
    --fail-nvram <s>      fail the marking memory at s seconds
    --degraded            keep running after the disk failure
    --spare <s>           install a spare s seconds after the failure
    --scrub <iops>        enable background tour scrubbing with this
                          disk-read IOPS budget
    --latent <rate>       latent sector errors per disk-hour (default: 0)
    --tour <secs>         target tour period for the dwell model when no
                          tour completes (default: 3600)
    --transient <p>[:<q>] per-I/O media-error probability p and command
                          timeout probability q (default: 0, faults off)
    --fail-slow <d>@<s>+<w>x<f>
                          disk d serves I/O f times slower from s seconds
                          for w seconds (trips the health scoreboard)
    --evict-threshold <t> EWMA fault score that condemns a disk for
                          proactive eviction (default: 0 = never evict)
    --corrupt <p>         disks lie: each silent-fault class (torn, lost,
                          misdirected write; read bit-flip) fires with
                          per-I/O probability p (default: 0, disks honest)
    --verify-reads        checksum-verify every read and scrub pass;
                          detected corruption is repaired from parity or
                          declared (without this, corrupt reads are silent)
    --scheduler <name>    event-scheduler backend: heap | calendar
                          (default: heap); a pure performance switch —
                          both deliver bit-identical results
    --json                emit the full result as JSON
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("workloads") => {
            for kind in WorkloadKind::all() {
                let spec = WorkloadSpec::preset(kind);
                println!(
                    "{:<11} ~{:>5.1} req/s, {:>2.0}% writes  {}",
                    spec.name,
                    spec.offered_ios_per_sec(),
                    spec.write_prob * 100.0,
                    spec.description
                );
            }
            ExitCode::SUCCESS
        }
        Some("policies") => {
            println!("raid0                unprotected striping (AFRAID that never scrubs)");
            println!("afraid               baseline AFRAID: defer parity to idle time");
            println!("raid5                traditional always-consistent RAID 5");
            println!("mttdl:<hours>        keep achieved disk MTTDL above the target");
            println!("conservative:<bytes> start as RAID 5, defer once bursts fit the bound");
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_policy(s: &str) -> Option<ParityPolicy> {
    match s {
        "raid0" => Some(ParityPolicy::NeverRebuild),
        "afraid" => Some(ParityPolicy::IdleOnly),
        "raid5" => Some(ParityPolicy::AlwaysRaid5),
        _ => {
            if let Some(h) = s.strip_prefix("mttdl:") {
                return h
                    .parse()
                    .ok()
                    .map(|target_hours| ParityPolicy::MttdlTarget { target_hours });
            }
            if let Some(b) = s.strip_prefix("conservative:") {
                return b
                    .parse()
                    .ok()
                    .map(|lag_bound_bytes| ParityPolicy::Conservative { lag_bound_bytes });
            }
            None
        }
    }
}

/// One cell of the sweep matrix, shaped for `--json` output.
#[derive(serde::Serialize)]
struct SweepRow {
    workload: String,
    policy: String,
    mean_io_ms: f64,
    p95_io_ms: f64,
    frac_unprotected: f64,
    mttdl_disk_hours: f64,
    mttdl_overall_hours: f64,
    events_processed: u64,
}

fn sweep(args: &[String]) -> ExitCode {
    let mut secs = 600u64;
    let mut seed = 42u64;
    let mut jobs = afraid_exp::default_jobs();
    let mut json = false;
    let mut full = false;
    let mut use_cache = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("missing value for {what}");
            }
            v
        };
        match arg.as_str() {
            "--secs" => match value("--secs").and_then(|v| v.parse().ok()) {
                Some(v) => secs = v,
                None => return ExitCode::FAILURE,
            },
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return ExitCode::FAILURE,
            },
            "--jobs" => match value("--jobs").and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return ExitCode::FAILURE,
            },
            "--full" => full = true,
            "--cache" => use_cache = true,
            "--no-cache" => use_cache = false,
            "--json" => json = true,
            other => {
                eprintln!("unknown option '{other}'");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let policies = if full {
        harness::policy_sweep()
    } else {
        harness::headline_designs()
    };
    let cfg = ArrayConfig::paper_default(ParityPolicy::IdleOnly);
    let unit_sectors = cfg.stripe_unit_bytes / 512;
    let stripes = cfg.disk_model.geometry.capacity_sectors() / unit_sectors;
    let capacity = stripes * u64::from(cfg.n_data()) * cfg.stripe_unit_bytes * 9 / 10;

    let kinds = WorkloadKind::all();
    let duration = SimDuration::from_secs(secs);
    let cache = use_cache.then(|| CellCache::new(CellCache::default_dir(), harness::RESULT_SCHEMA));
    let traces = afraid_exp::generate_traces(jobs, &kinds, capacity, duration, seed);
    let rows = harness::run_cells_cached(
        jobs,
        &kinds,
        &traces,
        capacity,
        duration,
        seed,
        &policies,
        cache.as_ref(),
    );

    let mut cells = Vec::new();
    for (kind, row) in kinds.iter().zip(&rows) {
        for ((name, _), cell) in policies.iter().zip(row) {
            cells.push(SweepRow {
                workload: kind.name().to_string(),
                policy: name.to_string(),
                mean_io_ms: cell.result.metrics.mean_io_ms,
                p95_io_ms: cell.result.metrics.p95_io_ms,
                frac_unprotected: cell.result.metrics.frac_unprotected,
                mttdl_disk_hours: cell.avail.mttdl_disk,
                mttdl_overall_hours: cell.avail.mttdl_overall,
                events_processed: cell.result.metrics.events_processed,
            });
        }
    }

    if json {
        match serde_json::to_string_pretty(&cells) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Counters go to stderr: stdout stays a pure cells array, so
        // cold and warm runs can be compared byte-for-byte.
        if let Some(c) = &cache {
            match serde_json::to_string(&c.stats()) {
                Ok(s) => eprintln!("{s}"),
                Err(e) => {
                    eprintln!("cache stats serialisation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    println!("Sweep: {secs}s traces, seed {seed}, jobs {jobs}");
    println!();
    let header = format!(
        "{:<11} {:<8} {:>12} {:>10} {:>9} {:>13} {:>14}",
        "workload", "policy", "mean io ms", "p95 ms", "unprot%", "MTTDL disk h", "MTTDL all h"
    );
    println!("{header}");
    println!("{}", "-".repeat(header.len()));
    for c in &cells {
        println!(
            "{:<11} {:<8} {:>12.2} {:>10.2} {:>8.1}% {:>13.2e} {:>14.2e}",
            c.workload,
            c.policy,
            c.mean_io_ms,
            c.p95_io_ms,
            c.frac_unprotected * 100.0,
            c.mttdl_disk_hours,
            c.mttdl_overall_hours,
        );
    }
    if let Some(c) = &cache {
        println!();
        println!("{}", c.stats().summary());
    }
    ExitCode::SUCCESS
}

fn chaos(args: &[String]) -> ExitCode {
    let mut secs = 5u64;
    let mut seed = 42u64;
    let mut cuts_n = 256usize;
    let mut jobs = afraid_exp::default_jobs();
    let mut scenarios: Vec<Scenario> = Scenario::ALL.to_vec();
    let mut use_cache = false;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("missing value for {what}");
            }
            v
        };
        match arg.as_str() {
            "--secs" => match value("--secs").and_then(|v| v.parse().ok()) {
                Some(v) => secs = v,
                None => return ExitCode::FAILURE,
            },
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return ExitCode::FAILURE,
            },
            "--cuts" => match value("--cuts").and_then(|v| v.parse().ok()) {
                Some(v) => cuts_n = v,
                None => return ExitCode::FAILURE,
            },
            "--jobs" => match value("--jobs").and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return ExitCode::FAILURE,
            },
            "--scenario" => {
                let Some(v) = value("--scenario") else {
                    return ExitCode::FAILURE;
                };
                if v == "all" {
                    scenarios = Scenario::ALL.to_vec();
                } else {
                    match Scenario::parse(&v) {
                        Some(sc) => scenarios = vec![sc],
                        None => {
                            eprintln!(
                                "unknown scenario '{v}' (want all {})",
                                Scenario::ALL.map(|s| s.name()).join(" ")
                            );
                            return ExitCode::FAILURE;
                        }
                    }
                }
            }
            "--cache" => use_cache = true,
            "--no-cache" => use_cache = false,
            "--json" => json = true,
            other => {
                eprintln!("unknown option '{other}'");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let duration = SimDuration::from_secs(secs);
    let cache =
        use_cache.then(|| CellCache::new(CellCache::default_dir(), afraid_chaos::CHAOS_SCHEMA));
    let mut summaries = Vec::new();
    for sc in &scenarios {
        let spec = sc.spec(duration, seed);
        let trace = spec.trace();
        let total = spec.total_events(&trace);
        let cuts = afraid_chaos::cut_points(total, cuts_n);
        let verdicts = afraid_chaos::sweep(&spec, &trace, &cuts, jobs, cache.as_ref());
        summaries.push(afraid_chaos::summarize(sc.name(), &verdicts));
    }
    let all_passed = summaries.iter().all(|s| s.failed == 0);

    if json {
        match serde_json::to_string_pretty(&summaries) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Counters go to stderr so cold and warm stdout stay
        // byte-comparable (same convention as `sweep --json`).
        if let Some(c) = &cache {
            match serde_json::to_string(&c.stats()) {
                Ok(s) => eprintln!("{s}"),
                Err(e) => {
                    eprintln!("cache stats serialisation failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    } else {
        println!("Chaos: {secs}s traces, seed {seed}, jobs {jobs}, {cuts_n} cuts per scenario");
        println!();
        let header = format!(
            "{:<9} {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
            "scenario", "cuts", "failed", "scrubbed", "reconst", "declared", "true-lost"
        );
        println!("{header}");
        println!("{}", "-".repeat(header.len()));
        for s in &summaries {
            println!(
                "{:<9} {:>6} {:>6} {:>8} {:>8} {:>9} {:>9}",
                s.scenario,
                s.cuts,
                s.failed,
                s.scrubbed,
                s.reconstructed,
                s.declared_lost_units,
                s.truly_lost_units,
            );
            if let Some(f) = &s.first_failure {
                println!("  FIRST FAILURE: {f}");
            }
        }
        if let Some(c) = &cache {
            println!();
            println!("{}", c.stats().summary());
        }
    }
    if all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(args: &[String]) -> ExitCode {
    let mut workload = WorkloadKind::Snake;
    let mut policy = ParityPolicy::IdleOnly;
    let mut secs = 600u64;
    let mut seed = 42u64;
    let mut disks = 5u32;
    let mut opts = RunOptions::default();
    let mut json = false;
    let mut scrub = afraid::config::ScrubConfig::default();
    let mut faults = afraid::config::FaultConfig::default();
    let mut integrity = afraid::config::IntegrityConfig::default();
    let mut scheduler = afraid_sim::queue::SchedulerKind::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Option<String> {
            let v = it.next().cloned();
            if v.is_none() {
                eprintln!("missing value for {what}");
            }
            v
        };
        match arg.as_str() {
            "--workload" => {
                let Some(v) = value("--workload") else {
                    return ExitCode::FAILURE;
                };
                match WorkloadKind::from_name(&v) {
                    Some(k) => workload = k,
                    None => {
                        eprintln!("unknown workload '{v}' (see `afraid-cli workloads`)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--policy" => {
                let Some(v) = value("--policy") else {
                    return ExitCode::FAILURE;
                };
                match parse_policy(&v) {
                    Some(p) => policy = p,
                    None => {
                        eprintln!("unknown policy '{v}' (see `afraid-cli policies`)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--secs" => match value("--secs").and_then(|v| v.parse().ok()) {
                Some(v) => secs = v,
                None => return ExitCode::FAILURE,
            },
            "--seed" => match value("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return ExitCode::FAILURE,
            },
            "--disks" => match value("--disks").and_then(|v| v.parse().ok()) {
                Some(v) => disks = v,
                None => return ExitCode::FAILURE,
            },
            "--fail-disk" => {
                let Some(v) = value("--fail-disk") else {
                    return ExitCode::FAILURE;
                };
                let Some((d, s)) = v.split_once('@') else {
                    eprintln!("--fail-disk wants <disk>@<seconds>, got '{v}'");
                    return ExitCode::FAILURE;
                };
                match (d.parse(), s.parse::<f64>()) {
                    (Ok(d), Ok(s)) => {
                        opts.fail_disk = Some((d, SimTime::from_secs_f64(s)));
                    }
                    _ => {
                        eprintln!("--fail-disk wants <disk>@<seconds>, got '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--fail-nvram" => match value("--fail-nvram").and_then(|v| v.parse::<f64>().ok()) {
                Some(s) => opts.fail_nvram = Some(SimTime::from_secs_f64(s)),
                None => return ExitCode::FAILURE,
            },
            "--degraded" => opts.continue_degraded = true,
            "--spare" => match value("--spare").and_then(|v| v.parse::<f64>().ok()) {
                Some(s) => opts.spare_delay = Some(SimDuration::from_secs_f64(s)),
                None => return ExitCode::FAILURE,
            },
            "--scrub" => match value("--scrub").and_then(|v| v.parse::<f64>().ok()) {
                Some(iops) => {
                    scrub.enabled = true;
                    scrub.iops_budget = iops;
                }
                None => return ExitCode::FAILURE,
            },
            "--latent" => match value("--latent").and_then(|v| v.parse::<f64>().ok()) {
                Some(rate) => scrub.latent_rate_per_disk_hour = rate,
                None => return ExitCode::FAILURE,
            },
            "--tour" => match value("--tour").and_then(|v| v.parse::<f64>().ok()) {
                Some(s) => scrub.tour_period = SimDuration::from_secs_f64(s),
                None => return ExitCode::FAILURE,
            },
            "--transient" => {
                let Some(v) = value("--transient") else {
                    return ExitCode::FAILURE;
                };
                let (p, q) = match v.split_once(':') {
                    Some((p, q)) => (p.parse::<f64>(), q.parse::<f64>()),
                    None => (v.parse::<f64>(), Ok(0.0)),
                };
                match (p, q) {
                    (Ok(p), Ok(q)) => {
                        faults.media_error_per_io = p;
                        faults.timeout_per_io = q;
                    }
                    _ => {
                        eprintln!("--transient wants <p>[:<q>], got '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--fail-slow" => {
                let Some(v) = value("--fail-slow") else {
                    return ExitCode::FAILURE;
                };
                let parsed = v.split_once('@').and_then(|(d, rest)| {
                    let (s, rest) = rest.split_once('+')?;
                    let (w, f) = rest.split_once('x')?;
                    Some((
                        d.parse::<u32>().ok()?,
                        s.parse::<f64>().ok()?,
                        w.parse::<f64>().ok()?,
                        f.parse::<f64>().ok()?,
                    ))
                });
                match parsed {
                    Some((disk, start, window, factor)) => {
                        faults.fail_slow = Some(afraid::config::FailSlowConfig {
                            disk,
                            start: SimTime::from_secs_f64(start),
                            duration: SimDuration::from_secs_f64(window),
                            factor,
                        });
                    }
                    None => {
                        eprintln!("--fail-slow wants <disk>@<start>+<window>x<factor>, got '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--evict-threshold" => {
                match value("--evict-threshold").and_then(|v| v.parse::<f64>().ok()) {
                    Some(t) => faults.evict_threshold = t,
                    None => return ExitCode::FAILURE,
                }
            }
            "--corrupt" => match value("--corrupt").and_then(|v| v.parse::<f64>().ok()) {
                Some(p) => {
                    integrity.bit_flip_per_read = p;
                    integrity.torn_write_per_io = p;
                    integrity.lost_write_per_io = p;
                    integrity.misdirected_write_per_io = p;
                }
                None => return ExitCode::FAILURE,
            },
            "--verify-reads" => {
                integrity.verify_reads = true;
                integrity.verify_scrub = true;
            }
            "--scheduler" => {
                let Some(v) = value("--scheduler") else {
                    return ExitCode::FAILURE;
                };
                match afraid_sim::queue::SchedulerKind::parse(&v) {
                    Some(k) => scheduler = k,
                    None => {
                        eprintln!("unknown scheduler '{v}' (want heap | calendar)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown option '{other}'");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cfg = ArrayConfig::paper_default(policy);
    cfg.disks = disks;
    cfg.scrub = scrub;
    cfg.faults = faults;
    cfg.integrity = integrity;
    cfg.scheduler = scheduler;
    // Checksums are kept against the intended contents, so injection
    // and verification both need the shadow content model.
    if cfg.integrity.active() {
        cfg.shadow = true;
    }
    if let Err(e) = cfg.validate() {
        eprintln!("invalid configuration: {e}");
        return ExitCode::FAILURE;
    }

    // Trace capacity: ~90% of the array's usable space.
    let unit_sectors = cfg.stripe_unit_bytes / 512;
    let stripes = cfg.disk_model.geometry.capacity_sectors() / unit_sectors;
    let capacity = stripes * u64::from(cfg.n_data()) * cfg.stripe_unit_bytes * 9 / 10;
    let spec = WorkloadSpec::preset(workload);
    let trace = spec.generate(capacity, SimDuration::from_secs(secs), seed);

    let result = run_trace(&cfg, &trace, &opts);
    if json {
        match serde_json::to_string_pretty(&result) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("serialisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let m = &result.metrics;
    println!(
        "workload     {} ({} requests over {:.0}s, seed {seed})",
        spec.name, m.requests, secs
    );
    println!(
        "policy       {policy:?} on {disks} x {}",
        cfg.disk_model.name
    );
    println!();
    println!(
        "mean I/O     {:.2} ms (reads {:.2}, writes {:.2})",
        m.mean_io_ms, m.mean_read_ms, m.mean_write_ms
    );
    println!(
        "p50/p95/p99  {:.2} / {:.2} / {:.2} ms (reads {:.2} / {:.2} / {:.2}, writes {:.2} / {:.2} / {:.2})",
        m.p50_io_ms,
        m.p95_io_ms,
        m.p99_io_ms,
        m.p50_read_ms,
        m.p95_read_ms,
        m.p99_read_ms,
        m.p50_write_ms,
        m.p95_write_ms,
        m.p99_write_ms
    );
    println!(
        "parity lag   mean {:.1} KB, peak {:.1} KB, unprotected {:.2}% of time",
        m.mean_parity_lag_bytes / 1024.0,
        m.peak_parity_lag_bytes / 1024.0,
        m.frac_unprotected * 100.0
    );
    println!("disk I/Os    {:?}", m.io);
    println!(
        "scrubbing    {} stripes in {} batches",
        m.stripes_scrubbed, m.scrub_batches
    );
    if cfg.scrub.enabled || cfg.scrub.latent_rate_per_disk_hour > 0.0 {
        println!(
            "tour scrub   {} tours (mean {:.1}s), {} sectors read, latent {} found / {} repaired",
            m.scrub_tours,
            m.mean_tour_secs,
            m.tour_sectors_read,
            m.latent_detected,
            m.latent_repaired
        );
    }
    if cfg.faults.active() {
        println!(
            "transient    {} media errors, {} timeouts; {} retries (p50/p95/p99 {:.2} / {:.2} / {:.2} ms to recover)",
            m.media_errors, m.timeouts, m.retries, m.retry_p50_ms, m.retry_p95_ms, m.retry_p99_ms
        );
        println!(
            "             {} exhausted, {} reconstruct-read fallbacks, {} degraded write completions",
            m.io_exhausted, m.reconstruct_fallbacks, m.degraded_completions
        );
        if m.evictions > 0 {
            println!(
                "eviction     {} disk(s) evicted, exposure window {:.1}s",
                m.evictions, m.evict_exposure_secs
            );
        }
    }
    if cfg.integrity.active() {
        let i = &m.integrity;
        println!(
            "integrity    {} silent faults injected ({} torn, {} lost, {} misdirected, {} victim)",
            i.injected_total(),
            i.injected_torn,
            i.injected_lost,
            i.injected_misdirected,
            i.injected_victim
        );
        println!(
            "             {} detected: {} repaired byte-exactly, {} declared; {} erased by overwrite",
            i.detected, i.repaired, i.declared, i.self_healed
        );
        println!(
            "             {} silent reads, {} false positives ({} units verified, {} flips re-read)",
            i.silent_reads, i.false_positives, i.verified_units, i.flip_repairs
        );
    }
    let avail = availability(&cfg, m);
    println!(
        "MTTDL        disk-related {:.2e} h, overall {:.2e} h",
        avail.mttdl_disk, avail.mttdl_overall
    );
    if avail.mttdl_latent.is_finite() {
        println!(
            "MTTDL latent {:.2e} h ({:.3} B/h)",
            avail.mttdl_latent, avail.mdlr_latent
        );
    }
    if avail.mttdl_evict.is_finite() {
        println!(
            "MTTDL evict  {:.2e} h ({:.3} B/h)",
            avail.mttdl_evict, avail.mdlr_evict
        );
    }
    if avail.mttdl_corrupt.is_finite() {
        println!(
            "MTTDL corrupt {:.2e} h ({:.3} B/h)",
            avail.mttdl_corrupt, avail.mdlr_corrupt
        );
    }
    println!(
        "MDLR         disk {:.3} B/h (unprotected part {:.3}), overall {:.0} B/h",
        avail.mdlr_disk, avail.mdlr_unprotected, avail.mdlr_overall
    );
    if let Some(loss) = &result.loss {
        println!();
        println!(
            "disk {} failed at {}: {} dirty stripes, {} data units lost ({} bytes)",
            loss.failed_disk, loss.at, loss.dirty_stripes, loss.lost_units, loss.lost_bytes
        );
        if loss.latent_lost_units > 0 {
            println!(
                "latent loss  {} units ({} bytes) from undetected sector errors",
                loss.latent_lost_units, loss.latent_lost_bytes
            );
        }
    }
    if let Some(t) = result.reprotected_at {
        println!("NVRAM-loss sweep completed at {t}");
    }
    if let Some(t) = result.evicted_at {
        println!("health scoreboard evicted disk at {t}");
    }
    if let Some(t) = result.rebuilt_at {
        println!("spare rebuild completed at {t}");
    }
    ExitCode::SUCCESS
}
