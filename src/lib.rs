//! Umbrella crate for the AFRAID reproduction.
//!
//! This crate re-exports the workspace's public surface so that the
//! examples and integration tests (and downstream users who want a
//! single dependency) can reach everything through one import:
//!
//! * [`sim`] — deterministic discrete-event simulation kernel.
//! * [`disk`] — calibrated disk model (Ruemmler-style, HP C3325 preset).
//! * [`trace`] — synthetic workload generators and trace analysis.
//! * [`avail`] — the paper's availability mathematics (MTTDL, MDLR).
//! * [`array`](mod@array) — the AFRAID array controller itself: layouts, policies,
//!   marking memory, scrubber, failure injection, and the end-to-end
//!   trace-driven simulation driver.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use afraid as array;
pub use afraid_avail as avail;
pub use afraid_disk as disk;
pub use afraid_sim as sim;
pub use afraid_trace as trace;
